// watchdog-serve exposes the simulation harness as an HTTP/JSON
// service: POST /v1/sim runs one (workload, configuration, scale)
// cell and answers with the same schema-v1 record `watchdog-bench
// -json` writes; POST /v1/juliet runs the security suite; GET
// /healthz and GET /metrics serve liveness and request/cache
// statistics. Identical in-flight requests coalesce onto a single
// simulation, saturation answers 429 + Retry-After, and SIGINT or
// SIGTERM drains gracefully: in-flight requests finish (within
// -drain-timeout), new ones are refused.
//
// Usage:
//
//	watchdog-serve                      # serve on 127.0.0.1:8080
//	watchdog-serve -addr :9090 -workers 4
//	curl -s localhost:8080/healthz
//	curl -s -d '{"workload":"mcf","config":"isa","overhead":true}' localhost:8080/v1/sim
//	curl -s -d '{"policy":"watchdog"}' localhost:8080/v1/juliet
//
// The built-in load generator doubles as a coalescing demo: point it
// at a running server and it fires identical concurrent requests,
// then reports how many simulations the server actually ran (one).
//
//	watchdog-serve -load 32 -c 8 -addr localhost:8080
//
// A fleet of these servers is also the worker pool of the distributed
// sweep fabric: `watchdog-bench -workers host:port,...` shards a
// figure sweep's cells across them over the same /v1/sim format,
// byte-identical to a local run (see DESIGN.md §13).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"watchdog/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable entry point: parses args, serves (or drives
// load) under ctx, and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("watchdog-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (server mode) or target host:port (-load)")
		workers  = fs.Int("workers", 0, "max concurrent computations (0 = GOMAXPROCS); excess requests get 429")
		maxScale = fs.Int("max-scale", 4, "largest workload scale a request may ask for")
		timeout  = fs.Duration("timeout", 120*time.Second, "per-request computation cap (requests may ask for less via timeout_ms)")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown window before in-flight simulations are force-canceled")

		load     = fs.Int("load", 0, "client mode: fire this many identical requests at -addr and report latency + server coalescing stats")
		conc     = fs.Int("c", 8, "client mode: concurrent requests")
		workload = fs.String("workload", "mcf", "client mode: workload to request")
		config   = fs.String("config", "conservative", "client mode: configuration to request")
		scale    = fs.Int("scale", 1, "client mode: workload scale")
		overhead = fs.Bool("overhead", false, "client mode: request the baseline too and report the slowdown ratio")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "watchdog-serve:", err)
		return 1
	}

	if *load > 0 {
		req := serve.SimRequest{Workload: *workload, Config: *config, Scale: *scale, Overhead: *overhead}
		return runLoad(ctx, *addr, *load, *conc, req, stdout, stderr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "watchdog-serve: listening on http://%s\n", ln.Addr())
	s := serve.New(serve.Config{
		MaxWorkers:     *workers,
		MaxScale:       *maxScale,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
	})
	if err := s.Serve(ctx, ln); err != nil {
		return fail(err)
	}
	fmt.Fprintln(stderr, "watchdog-serve: drained, exiting")
	return 0
}

// runLoad is the load generator: n identical POST /v1/sim requests
// over c concurrent workers, bracketed by /metrics snapshots so the
// printed report shows the server-side effect (how many simulations
// actually ran, how many requests coalesced or bounced).
func runLoad(ctx context.Context, addr string, n, c int, req serve.SimRequest, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "watchdog-serve:", err)
		return 1
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if c < 1 {
		c = 1
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fail(err)
	}
	client := &http.Client{}
	before, err := fetchMetrics(ctx, client, base)
	if err != nil {
		return fail(fmt.Errorf("fetching %s/metrics: %w", base, err))
	}

	codes := make([]int, n)
	lats := make([]time.Duration, n)
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
					base+"/v1/sim", bytes.NewReader(body))
				if err != nil {
					errs[i] = err
					continue
				}
				hreq.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(hreq)
				if err != nil {
					errs[i] = err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				codes[i], lats[i] = resp.StatusCode, time.Since(start)
			}
		}()
	}
	start := time.Now()
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	wall := time.Since(start)

	after, err := fetchMetrics(ctx, client, base)
	if err != nil {
		return fail(fmt.Errorf("fetching %s/metrics: %w", base, err))
	}

	counts := map[int]int{}
	var ok []time.Duration
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			counts[-1]++
			continue
		}
		counts[codes[i]]++
		if codes[i] == http.StatusOK {
			ok = append(ok, lats[i])
		}
	}
	fmt.Fprintf(stdout, "load: %d requests (%d concurrent) against %s in %s\n", n, c, base, wall.Round(time.Millisecond))
	statuses := make([]int, 0, len(counts))
	for code := range counts {
		statuses = append(statuses, code)
	}
	sort.Ints(statuses)
	for _, code := range statuses {
		label := fmt.Sprintf("HTTP %d", code)
		if code == -1 {
			label = "transport error"
		}
		fmt.Fprintf(stdout, "  %-16s %d\n", label, counts[code])
	}
	if len(ok) > 0 {
		sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
		fmt.Fprintf(stdout, "latency: p50 %s  p99 %s  max %s\n",
			ok[len(ok)/2].Round(time.Microsecond),
			ok[len(ok)*99/100].Round(time.Microsecond),
			ok[len(ok)-1].Round(time.Microsecond))
	}
	fmt.Fprintf(stdout, "server: +%d sims, +%d coalesced, +%d cache hits, +%d busy-rejected\n",
		after.Harness.Sims-before.Harness.Sims,
		after.Coalesced-before.Coalesced,
		after.Harness.CacheHits-before.Harness.CacheHits,
		after.RejectedBusy-before.RejectedBusy)

	if counts[-1] > 0 {
		return fail(fmt.Errorf("%d requests failed (first: %v)", counts[-1], firstErr(errs)))
	}
	for _, code := range statuses {
		// 429 is an expected answer under deliberate overload; anything
		// else non-2xx is a real failure.
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			return fail(fmt.Errorf("server answered HTTP %d", code))
		}
	}
	return 0
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func fetchMetrics(ctx context.Context, client *http.Client, base string) (*serve.Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
