// watchdog-serve exposes the simulation harness as an HTTP/JSON
// service: POST /v1/sim runs one (workload, configuration, scale)
// cell and answers with the same schema-v1 record `watchdog-bench
// -json` writes; POST /v1/juliet runs the security suite; GET
// /healthz and GET /metrics serve liveness and request/cache
// statistics. Identical in-flight requests coalesce onto a single
// simulation, saturation answers 429 + Retry-After, and SIGINT or
// SIGTERM drains gracefully: in-flight requests finish (within
// -drain-timeout), new ones are refused.
//
// Usage:
//
//	watchdog-serve                      # serve on 127.0.0.1:8080
//	watchdog-serve -addr :9090 -workers 4
//	curl -s localhost:8080/healthz
//	curl -s -d '{"workload":"mcf","config":"isa","overhead":true}' localhost:8080/v1/sim
//	curl -s -d '{"policy":"watchdog"}' localhost:8080/v1/juliet
//
// The built-in load generator doubles as a coalescing demo and as the
// saturation harness: point it at a running server and it fires
// deterministic mixed traffic, then reports the latency curve and how
// many simulations the server actually ran.
//
//	watchdog-serve -load 32 -c 8 -addr localhost:8080
//	watchdog-serve -load 0 -steps 1,2,4,8 -mix sim=90,juliet=10 \
//	    -addr localhost:8080 -load-out load.json -trend trend.json
//
// A fleet of these servers is also the worker pool of the distributed
// sweep fabric: `watchdog-bench -workers host:port,...` shards a
// figure sweep's cells across them over the same /v1/sim format,
// byte-identical to a local run (see DESIGN.md §13).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"watchdog/internal/loadgen"
	"watchdog/internal/report"
	"watchdog/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable entry point: parses args, serves (or drives
// load) under ctx, and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("watchdog-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (server mode) or target host:port (-load)")
		workers  = fs.Int("workers", 0, "max concurrent computations (0 = GOMAXPROCS); excess requests get 429")
		maxScale = fs.Int("max-scale", 4, "largest workload scale a request may ask for")
		timeout  = fs.Duration("timeout", 120*time.Second, "per-request computation cap (requests may ask for less via timeout_ms)")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown window before in-flight simulations are force-canceled")

		keys       = fs.String("keys", "", "API-key file (`<key> <tenant>` lines); empty serves unauthenticated as the anonymous tenant")
		rate       = fs.Float64("rate", 0, "per-tenant sustained request rate in req/s (0 = unlimited)")
		quota      = fs.Int64("quota", 0, "per-tenant daily request quota (0 = unlimited)")
		storeDir   = fs.String("store-dir", "", "persist completed results here and replay them across restarts (empty = memory only)")
		storeMaxMB = fs.Int("store-max-mb", 256, "disk budget for -store-dir in MiB; least recently used entries are evicted past it")

		logJSON = fs.Bool("log", false, "emit structured JSON request logs on stderr (server mode)")

		load     = fs.Int("load", 0, "client mode: fire this many requests per step at -addr and report the curve + server coalescing stats")
		conc     = fs.Int("c", 8, "client mode: concurrent requests (single-step mode; ignored when -steps is set)")
		steps    = fs.String("steps", "", "client mode: stepped-concurrency sweep, e.g. 1,2,4,8 (turns -load into the saturation harness)")
		mix      = fs.String("mix", "", "client mode: traffic mix, e.g. sim=90,juliet=10 (default sim=100)")
		workload = fs.String("workload", "mcf", "client mode: workload to request")
		config   = fs.String("config", "conservative", "client mode: configuration to request")
		scale    = fs.Int("scale", 1, "client mode: workload scale")
		fidelity = fs.String("fidelity", "", "client mode: sim fidelity to request (exact|sampled|memo)")
		overhead = fs.Bool("overhead", false, "client mode: request the baseline too and report the slowdown ratio")
		policy   = fs.String("policy", "watchdog", "client mode: juliet check policy to request")
		tagBits  = fs.Int("tag-bits", 0, "client mode: juliet tag width to request (0 = server default)")
		seed     = fs.Int64("seed", 1, "client mode: seed for the deterministic traffic sequence")
		apiKey   = fs.String("api-key", "", "client mode: API key sent with every request (Authorization: Bearer)")
		loadOut  = fs.String("load-out", "", "client mode: write the watchdog-load saturation record to this file")
		trend    = fs.String("trend", "", "client mode: append this sweep's points to a watchdog-trajectory trend file")
		trendLbl = fs.String("trend-label", "local", "client mode: label stamped on appended trend points")
		trendGat = fs.Float64("trend-threshold", 0, "client mode: with -trend, exit 1 if this sweep regressed more than this percent vs the previous run (0 = append only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "watchdog-serve:", err)
		return 1
	}

	if *load > 0 || *steps != "" {
		stepList, err := loadgen.ParseSteps(*steps)
		if err != nil {
			return fail(err)
		}
		mixVal, err := loadgen.ParseMix(*mix)
		if err != nil {
			return fail(err)
		}
		if stepList == nil {
			stepList = []int{*conc} // classic single-step mode: -load requests over -c workers
		}
		spec := loadgen.Spec{
			Target:   *addr,
			Steps:    stepList,
			PerStep:  *load,
			Mix:      mixVal,
			Seed:     *seed,
			Workload: *workload,
			Config:   *config,
			Scale:    *scale,
			Fidelity: *fidelity,
			Overhead: *overhead,
			Policy:   *policy,
			TagBits:  *tagBits,
			APIKey:   *apiKey,
			TimeoutMS: func() int64 {
				if *timeout > 0 && *timeout < 120*time.Second {
					return timeout.Milliseconds()
				}
				return 0
			}(),
		}
		return runLoad(ctx, spec, *loadOut, *trend, *trendLbl, *trendGat, stdout, stderr)
	}

	cfg := serve.Config{
		MaxWorkers:     *workers,
		MaxScale:       *maxScale,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		Rate:           *rate,
		Quota:          *quota,
	}
	if *keys != "" {
		km, err := serve.LoadKeys(*keys)
		if err != nil {
			return fail(err)
		}
		cfg.Keys = km
		fmt.Fprintf(stderr, "watchdog-serve: auth enabled (%d keys)\n", len(km))
	}
	if *storeDir != "" {
		st, err := serve.OpenStore(*storeDir, *storeMaxMB)
		if err != nil {
			return fail(err)
		}
		cfg.Store = st
		fmt.Fprintf(stderr, "watchdog-serve: result store at %s (budget %d MiB)\n", st.Dir(), *storeMaxMB)
	}
	if *logJSON {
		cfg.Logger = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "watchdog-serve: listening on http://%s\n", ln.Addr())
	s := serve.New(cfg)
	if err := s.Serve(ctx, ln); err != nil {
		return fail(err)
	}
	fmt.Fprintln(stderr, "watchdog-serve: drained, exiting")
	return 0
}

// runLoad is the load generator / saturation harness: it sweeps the
// spec's concurrency steps with loadgen, bracketed by /metrics
// snapshots so the printed report shows the server-side effect (how
// many simulations actually ran, how many requests coalesced or
// bounced), then optionally persists the watchdog-load record and
// appends/gates the performance trajectory.
func runLoad(ctx context.Context, spec loadgen.Spec, loadOut, trend, trendLabel string, trendGate float64, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "watchdog-serve:", err)
		return 1
	}
	base := spec.Target
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{}
	before, err := fetchMetrics(ctx, client, base)
	if err != nil {
		return fail(fmt.Errorf("fetching %s/metrics: %w", base, err))
	}

	lr, err := loadgen.Run(ctx, spec)
	if err != nil {
		return fail(err)
	}

	after, err := fetchMetrics(ctx, client, base)
	if err != nil {
		return fail(fmt.Errorf("fetching %s/metrics: %w", base, err))
	}

	var offered, okCount, rejected, failed, wallNanos int64
	for _, s := range lr.Steps {
		offered += s.Offered
		okCount += s.OK
		rejected += s.RejectedBusy
		failed += s.Errors
		wallNanos += s.WallNanos
	}
	wall := time.Duration(wallNanos)
	if len(lr.Steps) == 1 {
		fmt.Fprintf(stdout, "load: %d requests (%d concurrent) against %s in %s\n",
			offered, lr.Steps[0].Concurrency, base, wall.Round(time.Millisecond))
	} else {
		fmt.Fprintf(stdout, "load: %d requests over %d steps against %s in %s\n",
			offered, len(lr.Steps), base, wall.Round(time.Millisecond))
	}
	for _, s := range lr.Steps {
		fmt.Fprintf(stdout, "  c%-4d %5d ok  %4d rejected  %4d errors  p50 %.3gms  p99 %.3gms  %.5g rps\n",
			s.Concurrency, s.OK, s.RejectedBusy, s.Errors, s.P50Milli, s.P99Milli, s.ThroughputRPS)
	}
	fmt.Fprintf(stdout, "server: +%d sims, +%d coalesced, +%d cache hits, +%d busy-rejected\n",
		after.Harness.Sims-before.Harness.Sims,
		after.Coalesced-before.Coalesced,
		after.Harness.CacheHits-before.Harness.CacheHits,
		after.RejectedBusy-before.RejectedBusy)

	if loadOut != "" {
		if err := report.WriteLoadFile(loadOut, lr); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "watchdog-serve: wrote saturation record %s\n", loadOut)
	}
	if trend != "" {
		pts := report.LoadPoints(trendLabel, lr)
		now := time.Now().UnixNano()
		appended := make(map[string]bool, len(pts))
		for i := range pts {
			pts[i].UnixNanos = now
			appended[pts[i].Key] = true
		}
		tr, err := report.AppendTrajectory(trend, pts...)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "watchdog-serve: appended %d points to %s (%d total)\n", len(pts), trend, len(tr.Points))
		if trendGate > 0 {
			// Gate only on the keys this sweep appended: older pairs in
			// a shared trend file are someone else's history.
			regressed := false
			for _, reg := range tr.Regressed(trendGate) {
				if !appended[reg.Key] {
					continue
				}
				regressed = true
				fmt.Fprintf(stderr, "watchdog-serve: trend regression: %s %s %.4g -> %.4g (%+.1f%%)\n",
					reg.Key, reg.Metric, reg.Prev, reg.Curr, reg.DeltaPct)
			}
			if regressed {
				return 1
			}
		}
	}

	if failed > 0 {
		return fail(fmt.Errorf("%d of %d requests failed (non-200 non-429 or transport error)", failed, offered))
	}
	return 0
}

func fetchMetrics(ctx context.Context, client *http.Client, base string) (*serve.Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m serve.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
