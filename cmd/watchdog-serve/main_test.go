package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"watchdog/internal/serve"
)

// syncBuf is a goroutine-safe writer: the server goroutine writes the
// listen address while the test polls for it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// startServer runs the serve binary's entry point on an ephemeral
// port and returns its base URL plus a channel with the exit code.
func startServer(t *testing.T, ctx context.Context, args ...string) (string, <-chan int, *syncBuf) {
	t.Helper()
	stderr := &syncBuf{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &syncBuf{}, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], done, stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr: %s", stderr.String())
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with %d; stderr: %s", code, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestServeLifecycle: the binary serves requests, and cancelling its
// signal context (what SIGTERM does via main) drains cleanly with
// exit code 0.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done, stderr := startServer(t, ctx)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/sim", "application/json",
		strings.NewReader(`{"workload":"lbm","config":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sr serve.SimResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: status %d, err %v", resp.StatusCode, err)
	}
	if sr.Cell.Workload != "lbm" || sr.Cell.Cycles <= 0 {
		t.Fatalf("cell: %+v", sr.Cell)
	}

	cancel() // what SIGTERM does
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drained server exited %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancellation")
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("no drain confirmation on stderr: %s", stderr.String())
	}
}

// TestLoadMode: the load generator demonstrates the tentpole property
// end to end — N identical requests, one simulation on the server.
func TestLoadMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done, _ := startServer(t, ctx)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-load", "6", "-c", "3",
		"-addr", base,
		"-workload", "mcf", "-config", "conservative",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("load mode exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "6 requests") || !strings.Contains(out, "+1 sims") {
		t.Errorf("load report missing the coalescing evidence:\n%s", out)
	}

	// The server really ran exactly one simulation for all six
	// identical requests.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m serve.Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Harness.Sims != 1 {
		t.Errorf("server ran %d sims for identical load, want 1", m.Harness.Sims)
	}

	cancel()
	<-done
}

// TestRunFlagAndAddrErrors: bad flags exit 2, an unusable listen
// address exits 1, load mode against a dead server exits 1.
func TestRunFlagAndAddrErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:http"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad addr: exit %d, want 1 (stderr %s)", code, stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-load", "2", "-addr", "127.0.0.1:1"}, &stdout, &stderr); code != 1 {
		t.Errorf("dead target: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "metrics") {
		t.Errorf("dead-target error does not name the metrics probe: %s", stderr.String())
	}
}
