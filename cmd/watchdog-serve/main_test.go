package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"watchdog/internal/report"
	"watchdog/internal/serve"
)

// syncBuf is a goroutine-safe writer: the server goroutine writes the
// listen address while the test polls for it.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// startServer runs the serve binary's entry point on an ephemeral
// port and returns its base URL plus a channel with the exit code.
func startServer(t *testing.T, ctx context.Context, args ...string) (string, <-chan int, *syncBuf) {
	t.Helper()
	stderr := &syncBuf{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &syncBuf{}, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], done, stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr: %s", stderr.String())
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with %d; stderr: %s", code, stderr.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestServeLifecycle: the binary serves requests, and cancelling its
// signal context (what SIGTERM does via main) drains cleanly with
// exit code 0.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done, stderr := startServer(t, ctx)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/sim", "application/json",
		strings.NewReader(`{"workload":"lbm","config":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sr serve.SimResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sim: status %d, err %v", resp.StatusCode, err)
	}
	if sr.Cell.Workload != "lbm" || sr.Cell.Cycles <= 0 {
		t.Fatalf("cell: %+v", sr.Cell)
	}

	cancel() // what SIGTERM does
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drained server exited %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancellation")
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("no drain confirmation on stderr: %s", stderr.String())
	}
}

// TestLoadMode: the load generator demonstrates the tentpole property
// end to end — N identical requests, one simulation on the server.
func TestLoadMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done, _ := startServer(t, ctx)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-load", "6", "-c", "3",
		"-addr", base,
		"-workload", "mcf", "-config", "conservative",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("load mode exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "6 requests") || !strings.Contains(out, "+1 sims") {
		t.Errorf("load report missing the coalescing evidence:\n%s", out)
	}

	// The server really ran exactly one simulation for all six
	// identical requests.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m serve.Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Harness.Sims != 1 {
		t.Errorf("server ran %d sims for identical load, want 1", m.Harness.Sims)
	}

	cancel()
	<-done
}

// TestRunFlagAndAddrErrors: bad flags exit 2, an unusable listen
// address exits 1, load mode against a dead server exits 1.
func TestRunFlagAndAddrErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:http"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad addr: exit %d, want 1 (stderr %s)", code, stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-load", "2", "-addr", "127.0.0.1:1"}, &stdout, &stderr); code != 1 {
		t.Errorf("dead target: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "metrics") {
		t.Errorf("dead-target error does not name the metrics probe: %s", stderr.String())
	}
}

// TestSteppedSweep: -steps turns -load into the saturation harness —
// a mixed sweep produces a parseable watchdog-load record, appends to
// the trajectory, and a seeded-regression trend file trips the gate.
func TestSteppedSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done, _ := startServer(t, ctx, "-workers", "4")

	dir := t.TempDir()
	loadOut := filepath.Join(dir, "load.json")
	trend := filepath.Join(dir, "trend.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-load", "4", "-steps", "1,2", "-mix", "sim=50,juliet=50",
		"-workload", "lbm", "-config", "baseline", "-seed", "3",
		"-addr", base, "-load-out", loadOut, "-trend", trend, "-trend-label", "ci",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("sweep exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "8 requests over 2 steps") {
		t.Errorf("sweep header wrong:\n%s", stdout.String())
	}

	lr, err := report.ReadLoadFile(loadOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Steps) != 2 || lr.Mix.SimPct != 50 || lr.Mix.JulietPct != 50 {
		t.Fatalf("load record: %+v", lr)
	}
	for i, s := range lr.Steps {
		if s.Offered != 4 || s.Errors != 0 {
			t.Errorf("step %d: %+v", i, s)
		}
	}

	tr, err := report.ReadTrajectoryFile(trend)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 2 || tr.Points[0].Key != "load/sim50-juliet50/c1" || tr.Points[0].Label != "ci" {
		t.Fatalf("trajectory points: %+v", tr.Points)
	}

	// Seed an impossibly good previous point: the next sweep regresses
	// against it and the gate fires.
	if _, err := report.AppendTrajectory(trend, report.TrajectoryPoint{
		Key: "load/sim50-juliet50/c1", Label: "seeded", ThroughputRPS: 1e12,
	}); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	code = run(context.Background(), []string{
		"-load", "4", "-steps", "1,2", "-mix", "sim=50,juliet=50",
		"-workload", "lbm", "-config", "baseline", "-seed", "3",
		"-addr", base, "-trend", trend, "-trend-threshold", "10",
	}, io.Discard, &stderr)
	if code == 0 {
		t.Fatalf("regressed sweep exited 0; stderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "trend regression") {
		t.Errorf("stderr does not report the regression: %s", stderr.String())
	}

	cancel()
	<-done
}

// TestLoadFlagWiring: -fidelity, -policy and -tag-bits survive the
// trip from flag to request body (the client-mode knob-drop bugfix).
func TestLoadFlagWiring(t *testing.T) {
	var (
		mu     sync.Mutex
		bodies = map[string][]string{}
	)
	stub := http.NewServeMux()
	stub.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	capture := func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies[r.URL.Path] = append(bodies[r.URL.Path], string(b))
		mu.Unlock()
		w.Write([]byte(`{}`))
	}
	stub.HandleFunc("/v1/sim", capture)
	stub.HandleFunc("/v1/juliet", capture)
	srv := httptest.NewServer(stub)
	t.Cleanup(srv.Close)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-load", "16", "-c", "2", "-mix", "sim=50,juliet=50",
		"-fidelity", "sampled", "-policy", "xtag", "-tag-bits", "4",
		"-addr", srv.URL,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies["/v1/sim"]) == 0 || len(bodies["/v1/juliet"]) == 0 {
		t.Fatalf("mix drew no sims or no juliets: %v", bodies)
	}
	if got := bodies["/v1/sim"][0]; !strings.Contains(got, `"fidelity":"sampled"`) {
		t.Errorf("sim body lost -fidelity: %s", got)
	}
	if got := bodies["/v1/juliet"][0]; !strings.Contains(got, `"policy":"xtag"`) || !strings.Contains(got, `"tag_bits":4`) {
		t.Errorf("juliet body lost -policy/-tag-bits: %s", got)
	}
}

// TestServerLogFlag: -log makes the server emit structured JSON
// request records on stderr.
func TestServerLogFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done, stderr := startServer(t, ctx, "-log")

	resp, err := http.Post(base+"/v1/sim", "application/json",
		strings.NewReader(`{"workload":"lbm","config":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(stderr.String(), `"msg":"request"`) &&
			strings.Contains(stderr.String(), `"request_id"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no structured request log on stderr: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	<-done
}

// TestLoadAPIKeyHeader: client mode stamps -api-key on every request
// as a Bearer token.
func TestLoadAPIKeyHeader(t *testing.T) {
	var (
		mu   sync.Mutex
		auth []string
	)
	stub := http.NewServeMux()
	stub.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	})
	stub.HandleFunc("/v1/sim", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		auth = append(auth, r.Header.Get("Authorization"))
		mu.Unlock()
		w.Write([]byte(`{}`))
	})
	srv := httptest.NewServer(stub)
	t.Cleanup(srv.Close)

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-load", "4", "-c", "1", "-api-key", "sk-test", "-addr", srv.URL,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(auth) == 0 {
		t.Fatal("no sim requests reached the stub")
	}
	for i, a := range auth {
		if a != "Bearer sk-test" {
			t.Errorf("request %d Authorization = %q, want \"Bearer sk-test\"", i, a)
		}
	}
}

// TestServeKeysAndStoreFlags: a bad keys file or store directory fails
// before the server binds its listener.
func TestServeKeysAndStoreFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-keys", filepath.Join(t.TempDir(), "missing.txt"), "-addr", "127.0.0.1:0",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("missing keys file: exit %d, want 1 (stderr %s)", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "listening on") {
		t.Error("server bound its listener before key-file validation failed")
	}

	// A store path that collides with a regular file must also refuse.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "store")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	code = run(context.Background(), []string{
		"-store-dir", blocked, "-addr", "127.0.0.1:0",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("store-dir over a file: exit %d, want 1 (stderr %s)", code, stderr.String())
	}
}
