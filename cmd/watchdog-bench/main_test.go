package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"watchdog/internal/report"
	"watchdog/internal/serve"
)

// TestUnknownExpRejected: a bad -exp must exit non-zero and name the
// experiment — with and without -bars, which used to mask the error
// by setting ran=true unconditionally.
func TestUnknownExpRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "bogus"},
		{"-exp", "bogus", "-bars"},
		{"-exp", "fig99", "-bars", "-workloads", "mcf"},
	} {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), args, &stdout, &stderr)
		if code == 0 {
			t.Errorf("run(%v) = 0, want non-zero", args)
		}
		if !strings.Contains(stderr.String(), "unknown experiment") ||
			!strings.Contains(stderr.String(), args[1]) {
			t.Errorf("run(%v) stderr %q must name the bad experiment", args, stderr.String())
		}
		if strings.Contains(stdout.String(), "bars") || stdout.Len() > 0 {
			t.Errorf("run(%v) printed output before failing: %q", args, stdout.String())
		}
	}
}

func TestUnknownWorkloadsRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-workloads", "mcf,nope"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown workload must exit non-zero")
	}
	if !strings.Contains(stderr.String(), `"nope"`) {
		t.Fatalf("stderr %q must name the unknown workload", stderr.String())
	}
}

// TestJSONReportContract: -json writes a schema-versioned document
// whose cells cover every (workload, config) pair of the experiment,
// with breakdown fields that sum to total cycles, and the document
// round-trips through ReadFile unchanged.
func TestJSONReportContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf,perl", "-json", path}, io.Discard, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	rep, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != report.Schema || rep.Version != report.Version {
		t.Fatalf("unversioned document: schema=%q version=%d", rep.Schema, rep.Version)
	}
	// fig7 simulates baseline, the paper's two Watchdog configurations
	// and the two comparator columns for each workload.
	want := map[string]bool{}
	for _, w := range []string{"mcf", "perl"} {
		for _, c := range []string{"baseline", "conservative", "isa", "xtag", "dangkiller"} {
			want[w+"/"+c] = true
		}
	}
	for _, c := range rep.Cells {
		delete(want, c.Workload+"/"+c.Config)
		if sum := c.BaseCycles + c.CheckCycles + c.LockMissCycles + c.MetaCycles; sum != c.Cycles {
			t.Errorf("%s/%s: breakdown sum %d != cycles %d", c.Workload, c.Config, sum, c.Cycles)
		}
	}
	if len(want) != 0 {
		t.Fatalf("cells missing from report: %v", want)
	}
	if len(rep.Figures) != 1 || rep.Figures[0].Name != "fig7" || len(rep.Figures[0].Geomeans) != 4 {
		t.Fatalf("figure summaries wrong: %+v", rep.Figures)
	}
}

// TestBaselineCompareExitCodes: comparing an unchanged tree against
// its own report exits 0 with zero deltas; a seeded regression in the
// baseline makes the same run exit non-zero.
func TestBaselineCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	args := []string{"-exp", "fig7", "-workloads", "mcf", "-json", path}
	if code := run(context.Background(), args, io.Discard, io.Discard); code != 0 {
		t.Fatalf("report generation failed: %d", code)
	}

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf", "-baseline", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("unchanged tree vs own report: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 changed, 0 regressed") ||
		!strings.Contains(stdout.String(), "RESULT: ok") {
		t.Fatalf("expected zero-delta comparison, got:\n%s", stdout.String())
	}

	// Seed a regression: pretend the baseline was faster and its
	// geomeans lower, so the identical re-run reads as a slowdown.
	rep, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Cells {
		rep.Cells[i].Cycles = rep.Cells[i].Cycles * 8 / 10
	}
	for i := range rep.Figures {
		for j := range rep.Figures[i].Geomeans {
			rep.Figures[i].Geomeans[j].OverheadPct -= 20
		}
	}
	seeded := filepath.Join(dir, "seeded.json")
	if err := report.WriteFile(seeded, rep); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	code = run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf", "-baseline", seeded}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("seeded regression must exit non-zero; output:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "RESULT: REGRESSED") {
		t.Fatalf("expected REGRESSED verdict, got:\n%s", stdout.String())
	}

	// A generous threshold waves the same delta through.
	code = run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf", "-baseline", seeded, "-threshold", "50"},
		io.Discard, io.Discard)
	if code != 0 {
		t.Fatal("threshold 50 must accept a ~25% delta")
	}
}

// TestBaselineMissingFile: an unreadable baseline is an error, not a
// silent pass.
func TestBaselineMissingFile(t *testing.T) {
	var stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf", "-baseline",
		filepath.Join(t.TempDir(), "nope.json")}, io.Discard, &stderr)
	if code == 0 {
		t.Fatal("missing baseline file must exit non-zero")
	}
}

// TestFidelityFlagValidation: a bad -fidelity and a sampling override
// on a non-sampled fidelity are both rejected before any simulation.
func TestFidelityFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf",
		"-fidelity", "bogus"}, io.Discard, &stderr); code == 0 {
		t.Fatal("unknown fidelity must exit non-zero")
	}
	if !strings.Contains(stderr.String(), "fidelity") {
		t.Fatalf("stderr %q does not name the fidelity flag", stderr.String())
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf",
		"-sample", "1000"}, io.Discard, &stderr); code == 0 {
		t.Fatal("sampling override at exact fidelity must exit non-zero")
	}
	if !strings.Contains(stderr.String(), "sampled") {
		t.Fatalf("stderr %q does not explain the sampled-only override", stderr.String())
	}
}

// TestMixedFidelityBaselineRefused is the acceptance gate: a sampled
// run compared against an exact baseline exits non-zero with a
// fidelity error, while the same comparison at matching fidelity
// passes cleanly.
func TestMixedFidelityBaselineRefused(t *testing.T) {
	dir := t.TempDir()
	exact := filepath.Join(dir, "exact.json")
	if code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf",
		"-json", exact}, io.Discard, io.Discard); code != 0 {
		t.Fatalf("exact report generation failed: %d", code)
	}

	var stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf",
		"-fidelity", "sampled", "-baseline", exact}, io.Discard, &stderr)
	if code == 0 {
		t.Fatal("sampled run against exact baseline must exit non-zero")
	}
	if !strings.Contains(stderr.String(), "fidelit") {
		t.Fatalf("stderr %q does not name the fidelity mismatch", stderr.String())
	}

	// No threshold can launder the refusal into a pass.
	if code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf",
		"-fidelity", "sampled", "-baseline", exact, "-threshold", "1000"},
		io.Discard, io.Discard); code == 0 {
		t.Fatal("threshold must not bypass the mixed-fidelity refusal")
	}

	// Matching fidelity on both sides compares fine (determinism makes
	// the self-comparison exact).
	sampled := filepath.Join(dir, "sampled.json")
	if code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf",
		"-fidelity", "sampled", "-json", sampled}, io.Discard, io.Discard); code != 0 {
		t.Fatalf("sampled report generation failed: %d", code)
	}
	var stdout bytes.Buffer
	code = run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf",
		"-fidelity", "sampled", "-baseline", sampled}, &stdout, io.Discard)
	if code != 0 {
		t.Fatalf("sampled vs sampled self-comparison: exit %d\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "RESULT: ok") {
		t.Fatalf("expected clean comparison, got:\n%s", stdout.String())
	}
}

// TestFidelityDriftExperiment: -exp fidelity-drift prints the drift
// table and records one Drift row per (approximate fidelity, config)
// in the JSON report.
func TestFidelityDriftExperiment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fidelity-drift", "-workloads", "mcf,perl",
		"-json", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Fidelity drift") {
		t.Fatalf("drift table missing from output:\n%s", stdout.String())
	}
	rep, err := report.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Drift) != 8 { // {sampled, memoized} x 4 configs
		t.Fatalf("%d drift rows, want 8: %+v", len(rep.Drift), rep.Drift)
	}
	for _, d := range rep.Drift {
		if d.Fidelity != "sampled" && d.Fidelity != "memoized" {
			t.Errorf("drift row for fidelity %q", d.Fidelity)
		}
		if d.SpeedupX <= 0 {
			t.Errorf("%s/%s: non-positive speedup %v", d.Fidelity, d.Config, d.SpeedupX)
		}
		if d.ExactPct == 0 {
			t.Errorf("%s/%s: zero exact overhead reference", d.Fidelity, d.Config)
		}
	}
}

// TestJulietStats: -exp juliet -stats must report one sim per case,
// not "0 sims" (the Timing plumbing bug).
func TestJulietStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "juliet", "-stats", "-workloads", "mcf"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "582 sims") {
		t.Fatalf("stderr %q must report 582 sims", stderr.String())
	}
	if strings.Contains(stderr.String(), "0.0x parallel") {
		t.Fatalf("stderr %q reports a bogus parallelism ratio", stderr.String())
	}
	if !strings.Contains(stdout.String(), "291/291") {
		t.Fatalf("stdout %q must report the detection matrix", stdout.String())
	}
}

// TestBadScaleRejected: a non-positive -scale must exit non-zero up
// front. workload.BuildProgram silently clamps such scales to 1, so
// without eager validation the run would succeed while reporting the
// scale the user asked for instead of the one simulated.
func TestBadScaleRejected(t *testing.T) {
	for _, s := range []string{"0", "-2"} {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf", "-scale", s}, &stdout, &stderr)
		if code == 0 {
			t.Errorf("-scale %s must exit non-zero", s)
		}
		if !strings.Contains(stderr.String(), "-scale "+s) {
			t.Errorf("-scale %s: stderr %q must name the bad value", s, stderr.String())
		}
		if stdout.Len() > 0 {
			t.Errorf("-scale %s printed output before failing: %q", s, stdout.String())
		}
	}
}

// TestBenchOutRecord: -bench-out writes a schema-stamped timing
// document that round-trips through ReadBenchFile, records the run
// parameters, and breaks the wall time down per experiment.
func TestBenchOutRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fig7.json")
	var stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf", "-j", "2", "-bench-out", path},
		io.Discard, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	rec, err := report.ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Exp != "fig7" || rec.Scale != 1 || rec.Jobs != 2 {
		t.Fatalf("record params = (%s, %d, %d), want (fig7, 1, 2)", rec.Exp, rec.Scale, rec.Jobs)
	}
	if rec.WallNanos <= 0 || rec.BusyNanos <= 0 {
		t.Fatalf("wall %d / busy %d nanos must both be positive", rec.WallNanos, rec.BusyNanos)
	}
	if rec.Sims == 0 {
		t.Fatal("record must count the executed simulations")
	}
	if len(rec.Experiments) != 1 || rec.Experiments[0].Name != "fig7" || rec.Experiments[0].WallNanos <= 0 {
		t.Fatalf("experiments = %+v, want one timed fig7 entry", rec.Experiments)
	}
	if got := []string{"mcf"}; len(rec.Workloads) != 1 || rec.Workloads[0] != got[0] {
		t.Fatalf("workloads = %v, want %v", rec.Workloads, got)
	}
}

// TestCPUProfileFlag: -cpuprofile produces a non-empty pprof file.
func TestCPUProfileFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	var stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf", "-cpuprofile", path}, io.Discard, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	// The profile is finalized by the deferred StopCPUProfile inside
	// run, so it is complete once run returns.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("CPU profile file is empty")
	}
}

// TestProgressFinalLine: -progress prints a final summary line on
// stderr with done == total cells. (The periodic ticker only attaches
// to a real file stderr; the synchronous final line prints always, so
// an in-memory writer sees exactly the completed counters.)
func TestProgressFinalLine(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf", "-progress"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	m := regexp.MustCompile(`progress: (\d+)/(\d+) cells \(100\.0%\)`).FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("no completed progress line on stderr:\n%s", stderr.String())
	}
	if m[1] != m[2] || m[1] == "0" {
		t.Fatalf("progress line reports %s/%s cells, want equal and non-zero", m[1], m[2])
	}
	// The figure itself must be unaffected by the progress counters.
	if !strings.Contains(stdout.String(), "Figure 7") {
		t.Errorf("figure output missing with -progress:\n%s", stdout.String())
	}
}

// TestInterruptFlushesPartialOutputs: a run whose signal context is
// already dead (SIGINT before the first cell) still flushes both the
// metrics -json and the -bench-out timing documents, marks them
// partial, and exits non-zero — interrupted sweeps must never leave
// truncated or unmarked artifacts behind.
func TestInterruptFlushesPartialOutputs(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	benchPath := filepath.Join(dir, "timing.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{
		"-exp", "fig7", "-workloads", "mcf",
		"-json", jsonPath, "-bench-out", benchPath,
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("interrupted run exited 0; stderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr does not report the interrupt: %s", stderr.String())
	}

	rep, err := report.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("partial -json not flushed: %v", err)
	}
	if !rep.Partial {
		t.Error("flushed report is not marked partial")
	}
	if len(rep.Figures) != 0 {
		t.Errorf("interrupted-before-start report claims figures: %+v", rep.Figures)
	}

	br, err := report.ReadBenchFile(benchPath)
	if err != nil {
		t.Fatalf("partial -bench-out not flushed: %v", err)
	}
	if !br.Partial {
		t.Error("flushed timing record is not marked partial")
	}
}

// TestInterruptStopsCPUProfile: an interrupted run still finalizes
// the -cpuprofile file (a zero-byte or unterminated profile is what
// the pre-signal-handling code left behind).
func TestInterruptStopsCPUProfile(t *testing.T) {
	prof := filepath.Join(t.TempDir(), "cpu.pprof")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	if code := run(ctx, []string{"-exp", "fig7", "-workloads", "mcf", "-cpuprofile", prof}, &stdout, &stderr); code == 0 {
		t.Fatal("interrupted run exited 0")
	}
	fi, err := os.Stat(prof)
	if err != nil {
		t.Fatalf("cpu profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("cpu profile is empty: StopCPUProfile did not run on the interrupt path")
	}
}

// TestWorkersFlagValidation: -workers is validated eagerly — bad
// addresses, non-distributable experiments and sampling overrides all
// fail before any sweep starts.
func TestWorkersFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-workers", "ftp://h:1", "-exp", "fig7"}, "scheme"},
		{[]string{"-workers", " , ", "-exp", "fig7"}, "selects no workers"},
		{[]string{"-workers", "h:1", "-exp", "juliet"}, "cannot run with -workers"},
		{[]string{"-workers", "h:1", "-exp", "all"}, "cannot run with -workers"},
		{[]string{"-workers", "h:1", "-exp", "locksweep"}, "cannot run with -workers"},
		{[]string{"-workers", "h:1", "-exp", "fig7", "-fidelity", "sampled", "-sample", "512"}, "sampling overrides"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), tc.args, &stdout, &stderr); code == 0 {
			t.Errorf("run(%v) = 0, want non-zero", tc.args)
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("run(%v) stderr %q, want mention of %q", tc.args, stderr.String(), tc.want)
		}
	}
}

// TestWorkersEndToEnd: a distributed fig7 over two in-process workers
// renders byte-identical stdout to the local run, and the timing
// record carries the fabric counters.
func TestWorkersEndToEnd(t *testing.T) {
	w1 := httptest.NewServer(serve.New(serve.Config{MaxWorkers: 4}).Handler())
	w2 := httptest.NewServer(serve.New(serve.Config{MaxWorkers: 4}).Handler())
	defer w1.Close()
	defer w2.Close()

	base := []string{"-exp", "fig7", "-workloads", "lbm,mcf"}
	var localOut, localErr bytes.Buffer
	if code := run(context.Background(), base, &localOut, &localErr); code != 0 {
		t.Fatalf("local run failed: %s", localErr.String())
	}

	benchOut := filepath.Join(t.TempDir(), "bench.json")
	args := append(append([]string{}, base...),
		"-workers", w1.URL+","+w2.URL, "-bench-out", benchOut, "-stats")
	var distOut, distErr bytes.Buffer
	if code := run(context.Background(), args, &distOut, &distErr); code != 0 {
		t.Fatalf("distributed run failed: %s", distErr.String())
	}
	if distOut.String() != localOut.String() {
		t.Errorf("distributed stdout differs from local:\n%s\nvs\n%s", distOut.String(), localOut.String())
	}

	rec, err := report.ReadBenchFile(benchOut)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fabric == nil {
		t.Fatal("timing record has no fabric counters")
	}
	if rec.Fabric.CellsSent < 10 {
		t.Errorf("CellsSent = %d, want >= 10 (2 workloads x 5 cells)", rec.Fabric.CellsSent)
	}
	if len(rec.Fabric.Workers) != 2 {
		t.Errorf("workers in record: %d, want 2", len(rec.Fabric.Workers))
	}
	if !strings.Contains(distErr.String(), "fabric:") {
		t.Errorf("-stats did not print fabric counters: %s", distErr.String())
	}

	// The local timing record must NOT carry fabric counters.
	localBench := filepath.Join(t.TempDir(), "local.json")
	var o, e bytes.Buffer
	if code := run(context.Background(), append(append([]string{}, base...), "-bench-out", localBench), &o, &e); code != 0 {
		t.Fatalf("local bench-out run failed: %s", e.String())
	}
	lrec, err := report.ReadBenchFile(localBench)
	if err != nil {
		t.Fatal(err)
	}
	if lrec.Fabric != nil {
		t.Error("local run's timing record carries fabric counters")
	}
}

// TestTrendAppendAndGate: -trend appends one bench point per run;
// -trend-threshold gates the newest point against the previous one
// and only against this run's own key.
func TestTrendAppendAndGate(t *testing.T) {
	dir := t.TempDir()
	trend := filepath.Join(dir, "trend.json")
	base := []string{"-exp", "fig7", "-workloads", "mcf", "-trend", trend}

	// First run: nothing to compare against, must pass even with a gate.
	var stderr bytes.Buffer
	if code := run(context.Background(), append(append([]string{}, base...), "-trend-threshold", "5"), io.Discard, &stderr); code != 0 {
		t.Fatalf("first tracked run exited %d: %s", code, stderr.String())
	}
	tr, err := report.ReadTrajectoryFile(trend)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 1 || tr.Points[0].Key != "bench/fig7/scale1" || tr.Points[0].WallNanos <= 0 {
		t.Fatalf("trend after run 1: %+v", tr.Points)
	}
	if tr.Points[0].UnixNanos == 0 {
		t.Error("appended point is not timestamped")
	}

	// Seed an impossibly fast "previous" run so the next real run must
	// read as a regression.
	if _, err := report.AppendTrajectory(trend, report.TrajectoryPoint{
		Key: "bench/fig7/scale1", Label: "seeded", WallNanos: 1,
	}); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	code := run(context.Background(), append(append([]string{}, base...), "-trend-threshold", "10"), io.Discard, &stderr)
	if code == 0 {
		t.Fatalf("regressed run exited 0: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "trend regression") {
		t.Fatalf("stderr does not report the regression: %s", stderr.String())
	}
	// The point was still appended before gating — the trajectory keeps
	// the honest history.
	tr, err = report.ReadTrajectoryFile(trend)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 3 {
		t.Fatalf("trend after gated run: %d points, want 3", len(tr.Points))
	}

	// Without a threshold the same file only appends.
	stderr.Reset()
	if code := run(context.Background(), base, io.Discard, &stderr); code != 0 {
		t.Fatalf("append-only run exited %d: %s", code, stderr.String())
	}
}

// TestTrendSkipsPartialRuns: an interrupted run must not pollute the
// trajectory with a truncated wall time.
func TestTrendSkipsPartialRuns(t *testing.T) {
	trend := filepath.Join(t.TempDir(), "trend.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stderr bytes.Buffer
	if code := run(ctx, []string{"-exp", "fig7", "-workloads", "mcf", "-trend", trend}, io.Discard, &stderr); code == 0 {
		t.Fatal("interrupted run exited 0")
	}
	if !strings.Contains(stderr.String(), "skipping -trend") {
		t.Errorf("stderr does not explain the skipped append: %s", stderr.String())
	}
	if _, err := os.Stat(trend); !os.IsNotExist(err) {
		t.Errorf("partial run wrote a trend file (stat err %v)", err)
	}
}

// TestMetricsAddrFlag: -metrics-addr requires -workers, and with them
// it serves the live fabric counters in Prometheus text format for
// the sweep's duration.
func TestMetricsAddrFlag(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig7", "-workloads", "mcf",
		"-metrics-addr", "127.0.0.1:0"}, io.Discard, &stderr); code == 0 {
		t.Fatal("-metrics-addr without -workers must exit non-zero")
	}
	if !strings.Contains(stderr.String(), "-workers") {
		t.Fatalf("stderr %q does not name the missing -workers", stderr.String())
	}

	// A worker slowed enough that the scrape happens mid-sweep.
	h := serve.New(serve.Config{MaxWorkers: 4}).Handler()
	w := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		time.Sleep(30 * time.Millisecond)
		h.ServeHTTP(rw, r)
	}))
	defer w.Close()

	out := &lockedBuf{}
	done := make(chan int, 1)
	go func() {
		done <- run(context.Background(), []string{"-exp", "fig7", "-workloads", "lbm,mcf",
			"-workers", w.URL, "-metrics-addr", "127.0.0.1:0"}, io.Discard, out)
	}()
	re := regexp.MustCompile(`fabric metrics on (http://\S+/metrics)`)
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics endpoint never announced; stderr: %s", out.String())
		}
		select {
		case code := <-done:
			t.Fatalf("run exited %d before announcing metrics; stderr: %s", code, out.String())
		case <-time.After(2 * time.Millisecond):
		}
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("scrape content type %q", ct)
	}
	if !strings.Contains(string(body), "watchdog_fabric_cells_sent_total") ||
		!strings.Contains(string(body), "watchdog_fabric_worker_alive") {
		t.Errorf("scrape body missing fabric families:\n%s", body)
	}
	if code := <-done; code != 0 {
		t.Fatalf("distributed run exited %d; stderr: %s", code, out.String())
	}
}

// lockedBuf is a goroutine-safe buffer for concurrent run() output.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}
