// watchdog-bench regenerates the paper's tables and figures
// (Section 9) on the simulated processor.
//
// Usage:
//
//	watchdog-bench                     # everything
//	watchdog-bench -exp fig7           # one experiment
//	watchdog-bench -exp fig9 -scale 2
//	watchdog-bench -workloads mcf,perl -exp fig5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"watchdog/internal/experiments"
	"watchdog/internal/stats"
	"watchdog/internal/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: all|table1|table2|fig5|fig7|fig8|fig9|fig10|fig11|ideal|ablations|locksweep|juliet")
		scale  = flag.Int("scale", 1, "problem-size multiplier")
		wls    = flag.String("workloads", "", "comma-separated workload subset (default: all twenty)")
		bars   = flag.Bool("bars", false, "render overhead figures as bar charts too")
		csv    = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
		jobs   = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial; output is identical either way)")
		timing = flag.Bool("stats", false, "print harness timing counters to stderr when done")
	)
	flag.Parse()

	names, err := workloadSubset(*wls)
	if err != nil {
		fatal(err)
	}
	r, err := experiments.NewRunner(*scale, names...)
	if err != nil {
		fatal(err)
	}
	r.Jobs = *jobs
	start := time.Now()

	type tableFn struct {
		name string
		fn   func() (*stats.Table, error)
	}
	figures := []tableFn{
		{"table1", r.Table1},
		{"fig5", r.Fig5},
		{"fig7", r.Fig7},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"fig10", r.Fig10},
		{"fig11", r.Fig11},
		{"ideal", r.Ideal},
		{"ablations", r.Ablations},
		{"locksweep", func() (*stats.Table, error) { return r.LockSweep(nil) }},
	}

	ran := false
	if *exp == "all" || *exp == "table2" {
		fmt.Println(experiments.Table2())
		ran = true
	}
	for _, f := range figures {
		if *exp != "all" && *exp != f.name {
			continue
		}
		t, err := f.fn()
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", f.name, t.CSV())
		} else {
			fmt.Println(t)
		}
		ran = true
	}
	if *bars {
		for _, bc := range []struct {
			name string
			cfgs []experiments.ConfigName
		}{
			{"Figure 7 (bars): % slowdown", []experiments.ConfigName{experiments.CfgConservative, experiments.CfgISA}},
			{"Figure 9 (bars): % slowdown", []experiments.ConfigName{experiments.CfgISA, experiments.CfgISANoLock}},
			{"Figure 11 (bars): % slowdown", []experiments.ConfigName{experiments.CfgISA, experiments.CfgBounds1, experiments.CfgBounds2}},
		} {
			out, err := r.Bars(bc.name, bc.cfgs...)
			if err != nil {
				fatal(err)
			}
			fmt.Println(out)
		}
		ran = true
	}
	if *exp == "all" || *exp == "juliet" {
		fmt.Println("Section 9.2: security evaluation")
		fmt.Println(" ", experiments.JulietParallel(*jobs))
		fmt.Println()
		ran = true
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if *timing {
		r.Timing.SetWall(time.Since(start))
		fmt.Fprintf(os.Stderr, "watchdog-bench: %s (-j %d)\n", r.Timing.String(), *jobs)
	}
}

// workloadSubset parses the -workloads flag and validates every name
// eagerly, reporting the full list of unknown names (instead of
// silently running an empty or partial subset).
func workloadSubset(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var names, unknown []string
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := workload.ByName(n); !ok {
			unknown = append(unknown, fmt.Sprintf("%q", n))
			continue
		}
		names = append(names, n)
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown workloads: %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(workload.Names(), ", "))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-workloads %q selects no workloads (known: %s)",
			list, strings.Join(workload.Names(), ", "))
	}
	return names, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "watchdog-bench:", err)
	os.Exit(1)
}
