// watchdog-bench regenerates the paper's tables and figures
// (Section 9) on the simulated processor.
//
// Usage:
//
//	watchdog-bench                     # everything
//	watchdog-bench -exp fig7           # one experiment
//	watchdog-bench -exp fig9 -scale 2
//	watchdog-bench -workloads mcf,perl -exp fig5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"watchdog/internal/experiments"
	"watchdog/internal/stats"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: all|table1|table2|fig5|fig7|fig8|fig9|fig10|fig11|ideal|ablations|locksweep|juliet")
		scale = flag.Int("scale", 1, "problem-size multiplier")
		wls   = flag.String("workloads", "", "comma-separated workload subset (default: all twenty)")
		bars  = flag.Bool("bars", false, "render overhead figures as bar charts too")
		csv   = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	flag.Parse()

	var names []string
	if *wls != "" {
		names = strings.Split(*wls, ",")
	}
	r, err := experiments.NewRunner(*scale, names...)
	if err != nil {
		fatal(err)
	}

	type tableFn struct {
		name string
		fn   func() (*stats.Table, error)
	}
	figures := []tableFn{
		{"table1", r.Table1},
		{"fig5", r.Fig5},
		{"fig7", r.Fig7},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"fig10", r.Fig10},
		{"fig11", r.Fig11},
		{"ideal", r.Ideal},
		{"ablations", r.Ablations},
		{"locksweep", func() (*stats.Table, error) { return r.LockSweep(nil) }},
	}

	ran := false
	if *exp == "all" || *exp == "table2" {
		fmt.Println(experiments.Table2())
		ran = true
	}
	for _, f := range figures {
		if *exp != "all" && *exp != f.name {
			continue
		}
		t, err := f.fn()
		if err != nil {
			fatal(err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", f.name, t.CSV())
		} else {
			fmt.Println(t)
		}
		ran = true
	}
	if *bars {
		for _, bc := range []struct {
			name string
			cfgs []experiments.ConfigName
		}{
			{"Figure 7 (bars): % slowdown", []experiments.ConfigName{experiments.CfgConservative, experiments.CfgISA}},
			{"Figure 9 (bars): % slowdown", []experiments.ConfigName{experiments.CfgISA, experiments.CfgISANoLock}},
			{"Figure 11 (bars): % slowdown", []experiments.ConfigName{experiments.CfgISA, experiments.CfgBounds1, experiments.CfgBounds2}},
		} {
			out, err := r.Bars(bc.name, bc.cfgs...)
			if err != nil {
				fatal(err)
			}
			fmt.Println(out)
		}
		ran = true
	}
	if *exp == "all" || *exp == "juliet" {
		fmt.Println("Section 9.2: security evaluation")
		fmt.Println(" ", experiments.Juliet())
		fmt.Println()
		ran = true
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "watchdog-bench:", err)
	os.Exit(1)
}
