// watchdog-bench regenerates the paper's tables and figures
// (Section 9) on the simulated processor.
//
// Usage:
//
//	watchdog-bench                     # everything
//	watchdog-bench -exp fig7           # one experiment
//	watchdog-bench -exp fig9 -scale 2
//	watchdog-bench -workloads mcf,perl -exp fig5
//	watchdog-bench -json out.json      # machine-readable metrics report
//	watchdog-bench -baseline old.json  # diff against a previous report
//	watchdog-bench -exp fig7 -bench-out BENCH_fig7.json   # harness timing record
//	watchdog-bench -exp fig7 -cpuprofile cpu.pprof        # profile the harness
//	watchdog-bench -exp fig7 -workers :8081,:8082         # shard cells across watchdog-serve workers
//
// With -workers the cell simulations run on watchdog-serve processes
// (the /v1/sim wire format) instead of in-process: the coordinator
// shards cells across the fleet with hedged retries and health-based
// ejection, and the output stays byte-identical to a local run.
//
// SIGINT/SIGTERM cancel the sweep cooperatively — mid-simulation, not
// just between cells. An interrupted run still flushes its partial
// -json and -bench-out documents (marked "partial" in the schema),
// stops the CPU profile so the file stays usable, and exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"watchdog/internal/experiments"
	"watchdog/internal/fabric"
	"watchdog/internal/report"
	"watchdog/internal/security"
	"watchdog/internal/sim"
	"watchdog/internal/stats"
	"watchdog/internal/trace"
	"watchdog/internal/workload"
)

// knownExps is the -exp vocabulary, validated before anything runs so
// a typo cannot silently select nothing (or be masked by -bars).
var knownExps = []string{
	"all", "table1", "table2", "fig5", "fig7", "fig8", "fig9", "fig10",
	"fig11", "ideal", "ablations", "locksweep", "tagsweep", "juliet",
	"fidelity-drift",
}

// remotableExps is the -workers vocabulary: the experiments whose
// every cell is expressible as a /v1/sim request (a standard
// configuration at the run's scale and fidelity). The others either
// sweep non-standard configurations (locksweep, tagsweep), run the
// security suite (juliet), or compose several of these (all,
// fidelity-drift), so they stay local-only.
var remotableExps = []string{
	"fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "ideal", "ablations",
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable entry point: parses args, executes under ctx
// (canceled on SIGINT/SIGTERM by main), and returns the process exit
// code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("watchdog-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "all", "experiment: "+strings.Join(knownExps, "|"))
		scale     = fs.Int("scale", 1, "problem-size multiplier")
		wls       = fs.String("workloads", "", "comma-separated workload subset (default: all twenty)")
		bars      = fs.Bool("bars", false, "render overhead figures as bar charts too")
		csv       = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		jobs      = fs.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers (1 = serial; output is identical either way)")
		progress  = fs.Bool("progress", false, "print live sweep progress (cells done/total, elapsed, ETA) to stderr")
		timing    = fs.Bool("stats", false, "print harness timing counters to stderr when done")
		jsonOut   = fs.String("json", "", "write the machine-readable metrics report (schema v1 JSON) to this path")
		baseline  = fs.String("baseline", "", "compare this run against a previous -json report; exit non-zero on regression")
		threshold = fs.Float64("threshold", 1.0, "regression threshold for -baseline: percentage points on figure geomeans, percent on per-cell cycles")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this path")
		memProf   = fs.String("memprofile", "", "write an allocation profile (go tool pprof) to this path when done")
		benchOut  = fs.String("bench-out", "", "write the harness timing record (wall/busy time per experiment, schema v1 JSON) to this path")
		fidelity  = fs.String("fidelity", "exact", "timing fidelity: exact|sampled|memoized (fidelity-drift runs all three regardless)")
		sampleFF  = fs.Uint64("sample-ff", 0, "sampled fidelity: fast-forward instructions per period (0 = paper default)")
		sampleWU  = fs.Uint64("sample-warmup", 0, "sampled fidelity: warmup instructions per period (0 = paper default)")
		sampleWin = fs.Uint64("sample", 0, "sampled fidelity: measured instructions per period (0 = paper default)")
		workers   = fs.String("workers", "", "comma-separated watchdog-serve workers (host:port,...): shard cell simulations across them instead of simulating locally")
		apiKey    = fs.String("api-key", "", "with -workers: API key sent to each worker (Authorization: Bearer) for authed gateway fleets")

		metricsAddr = fs.String("metrics-addr", "", "with -workers: serve the coordinator's Prometheus /metrics on this address for the duration of the sweep")
		logJSON     = fs.Bool("log", false, "emit structured JSON logs (fabric events: hedges, ejections, cell fetches) to stderr")
		trend       = fs.String("trend", "", "append this run's wall time to a watchdog-trajectory trend file")
		trendLabel  = fs.String("trend-label", "local", "label stamped on trajectory points appended via -trend")
		trendGate   = fs.Float64("trend-threshold", 0, "with -trend: exit non-zero if this run's tracked metrics regressed more than this percent against the previous point (0 = append only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "watchdog-bench:", err)
		return 1
	}

	if !knownExp(*exp) {
		return fail(fmt.Errorf("unknown experiment %q (known: %s)", *exp, strings.Join(knownExps, ", ")))
	}
	if *scale < 1 {
		return fail(fmt.Errorf("-scale %d: the problem-size multiplier must be >= 1", *scale))
	}
	names, err := workloadSubset(*wls)
	if err != nil {
		return fail(err)
	}
	fid, err := sim.ParseFidelity(*fidelity)
	if err != nil {
		return fail(err)
	}
	sampling, err := sim.SamplingOverride(fid, *sampleFF, *sampleWU, *sampleWin)
	if err != nil {
		return fail(err)
	}
	workerAddrs, err := workerList(*workers)
	if err != nil {
		return fail(err)
	}
	if len(workerAddrs) > 0 {
		if !remotableExp(*exp) {
			return fail(fmt.Errorf("-exp %s cannot run with -workers; distributable experiments: %s",
				*exp, strings.Join(remotableExps, ", ")))
		}
		if sampling != nil {
			return fail(fmt.Errorf("-sample-ff/-sample-warmup/-sample cannot run with -workers: sampling overrides are not part of the wire format, so workers would simulate different cells"))
		}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	r, err := experiments.NewRunner(*scale, names...)
	if err != nil {
		return fail(err)
	}
	r.Jobs = *jobs
	r.Fidelity = fid
	r.Sampling = sampling
	if *metricsAddr != "" && len(workerAddrs) == 0 {
		return fail(fmt.Errorf("-metrics-addr only applies with -workers (it serves the coordinator's fabric metrics)"))
	}
	if *apiKey != "" && len(workerAddrs) == 0 {
		return fail(fmt.Errorf("-api-key only applies with -workers (it authenticates cell requests to the fleet)"))
	}
	var fab *fabric.Coordinator
	if len(workerAddrs) > 0 {
		fabOpts := fabric.Options{Scale: *scale, APIKey: *apiKey}
		if *logJSON {
			fabOpts.Logger = slog.New(slog.NewJSONHandler(stderr, nil))
		}
		fab, err = fabric.New(workerAddrs, fabOpts)
		if err != nil {
			return fail(err)
		}
		defer fab.Close()
		// The runner's fan-out, caches and workload-order merge are
		// unchanged; only the uncached-cell computation is replaced by
		// the fabric, so the rendered figures are byte-identical to a
		// local run.
		r.Remote = fab
		if *metricsAddr != "" {
			// A scrape endpoint for the sweep's duration: GET /metrics
			// answers the Prometheus exposition of the live fabric
			// counters (per-worker gauges included).
			ln, err := net.Listen("tcp", *metricsAddr)
			if err != nil {
				return fail(fmt.Errorf("-metrics-addr: %w", err))
			}
			mux := http.NewServeMux()
			mux.Handle("GET /metrics", fab.PromHandler())
			msrv := &http.Server{Handler: mux}
			go msrv.Serve(ln)
			defer msrv.Close()
			fmt.Fprintf(stderr, "watchdog-bench: fabric metrics on http://%s/metrics\n", ln.Addr())
		}
	}
	// The signal context rides the runner: every sweep below cancels
	// cooperatively on SIGINT/SIGTERM, mid-simulation.
	r.Ctx = ctx
	if *progress {
		r.Progress = trace.NewProgress()
		// The periodic reporter runs only when stderr is a real stream:
		// its writes are concurrent with the harness's own, which is
		// fine for a file descriptor but a race on an in-memory test
		// writer. The final line below is printed synchronously either
		// way, after every fan-out has completed. The goroutine is
		// routed through the signal context plus a deferred cancel, so
		// it is shut down on every exit path — early fail(...) returns
		// and interrupts included, not just the happy path.
		if _, isFile := stderr.(*os.File); isFile {
			repCtx, repStop := context.WithCancel(ctx)
			done := make(chan struct{})
			go func() {
				defer close(done)
				tick := time.NewTicker(time.Second)
				defer tick.Stop()
				for {
					select {
					case <-repCtx.Done():
						return
					case <-tick.C:
						fmt.Fprintln(stderr, "watchdog-bench:", r.Progress.Line())
					}
				}
			}()
			defer func() {
				repStop()
				<-done
			}()
		}
		defer func() {
			fmt.Fprintln(stderr, "watchdog-bench:", r.Progress.Line())
		}()
	}
	start := time.Now()

	type tableFn struct {
		name string
		fn   func() (*stats.Table, error)
	}
	figures := []tableFn{
		{"table1", r.Table1},
		{"fig5", r.Fig5},
		{"fig7", r.Fig7},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"fig10", r.Fig10},
		{"fig11", r.Fig11},
		{"ideal", r.Ideal},
		{"ablations", r.Ablations},
		{"locksweep", func() (*stats.Table, error) { return r.LockSweep(nil) }},
		{"tagsweep", func() (*stats.Table, error) { return r.TagSweep(nil) }},
	}

	// ranFigures collects the overhead figures this invocation swept,
	// for the report's geomean summaries (order-preserving, deduped).
	var ranFigures []string
	addFigure := func(name string) {
		if !experiments.IsOverheadFigure(name) {
			return
		}
		for _, n := range ranFigures {
			if n == name {
				return
			}
		}
		ranFigures = append(ranFigures, name)
	}

	// expTimes breaks the run's wall time down per experiment for the
	// -bench-out timing record.
	var expTimes []report.BenchExperiment
	timed := func(name string, t0 time.Time) {
		expTimes = append(expTimes, report.BenchExperiment{Name: name, WallNanos: int64(time.Since(t0))})
	}

	// partial flips when the signal context interrupts a sweep: the
	// remaining experiments are skipped, but everything that finished
	// still flushes (-json, -bench-out, the CPU profile) before the
	// non-zero exit.
	partial := false
	interrupted := func(err error) bool {
		return experiments.Canceled(err) && ctx.Err() != nil
	}

	if *exp == "all" || *exp == "table2" {
		fmt.Fprintln(stdout, experiments.Table2())
	}
	for _, f := range figures {
		if *exp != "all" && *exp != f.name {
			continue
		}
		t0 := time.Now()
		t, err := f.fn()
		if err != nil {
			if interrupted(err) {
				partial = true
				fmt.Fprintf(stderr, "watchdog-bench: interrupted during %s; flushing partial outputs\n", f.name)
				break
			}
			return fail(err)
		}
		timed(f.name, t0)
		if *csv {
			fmt.Fprintf(stdout, "# %s\n%s\n", f.name, t.CSV())
		} else {
			fmt.Fprintln(stdout, t)
		}
		addFigure(f.name)
	}
	// The fidelity-drift experiment is deliberately not part of "all":
	// it sweeps the fig7 configurations three times (once per
	// fidelity), and its point — quantifying the approximations — only
	// matters when asked for.
	var driftRows []report.Drift
	if *exp == "fidelity-drift" && !partial {
		t0 := time.Now()
		t, d, err := r.FidelityDrift()
		if err != nil {
			if !interrupted(err) {
				return fail(err)
			}
			partial = true
			fmt.Fprintln(stderr, "watchdog-bench: interrupted during fidelity-drift; flushing partial outputs")
		} else {
			timed("fidelity-drift", t0)
			if *csv {
				fmt.Fprintf(stdout, "# fidelity-drift\n%s\n", t.CSV())
			} else {
				fmt.Fprintln(stdout, t)
			}
			driftRows = d
		}
	}
	if *bars && !partial {
		for _, bc := range []struct {
			name string
			fig  string
			cfgs []experiments.ConfigName
		}{
			{"Figure 7 (bars): % slowdown", "fig7", []experiments.ConfigName{experiments.CfgConservative, experiments.CfgISA}},
			{"Figure 9 (bars): % slowdown", "fig9", []experiments.ConfigName{experiments.CfgISA, experiments.CfgISANoLock}},
			{"Figure 11 (bars): % slowdown", "fig11", []experiments.ConfigName{experiments.CfgISA, experiments.CfgBounds1, experiments.CfgBounds2}},
		} {
			out, err := r.Bars(bc.name, bc.cfgs...)
			if err != nil {
				if interrupted(err) {
					partial = true
					fmt.Fprintln(stderr, "watchdog-bench: interrupted during bars; flushing partial outputs")
					break
				}
				return fail(err)
			}
			fmt.Fprintln(stdout, out)
			addFigure(bc.fig)
		}
	}
	var julietSum *security.Summary
	if (*exp == "all" || *exp == "juliet") && !partial {
		t0 := time.Now()
		s, err := r.Juliet()
		if err != nil && !interrupted(err) {
			return fail(err)
		}
		timed("juliet", t0)
		fmt.Fprintln(stdout, "Section 9.2: security evaluation")
		if err != nil {
			partial = true
			fmt.Fprintln(stderr, "watchdog-bench: interrupted during juliet; summary is partial")
		}
		fmt.Fprintln(stdout, " ", s)
		fmt.Fprintln(stdout)
		julietSum = &s
	}

	if *jsonOut != "" || *baseline != "" {
		// Report assembly reads the warmed cache (completed figures
		// only), so it works after an interrupt too; the document is
		// marked partial so nobody gates a regression on it.
		rep, err := r.Report(ranFigures, julietSum)
		if err != nil {
			return fail(err)
		}
		rep.Partial = partial
		rep.Drift = driftRows
		if *jsonOut != "" {
			if err := report.WriteFile(*jsonOut, rep); err != nil {
				return fail(err)
			}
			what := ""
			if partial {
				what = ", partial"
			}
			fmt.Fprintf(stderr, "watchdog-bench: wrote %s (%d cells, %d figures%s)\n",
				*jsonOut, len(rep.Cells), len(rep.Figures), what)
		}
		if *baseline != "" {
			if partial {
				fmt.Fprintln(stderr, "watchdog-bench: skipping -baseline comparison: this run is partial")
			} else {
				base, err := report.ReadFile(*baseline)
				if err != nil {
					return fail(err)
				}
				// A mixed-fidelity comparison (e.g. a sampled run against
				// an exact baseline) is refused with an error: the exit is
				// non-zero and no threshold can launder it into a pass.
				cmp, err := report.Compare(base, rep, *threshold)
				if err != nil {
					return fail(err)
				}
				fmt.Fprint(stdout, cmp)
				if cmp.Regressed() {
					fmt.Fprintln(stderr, "watchdog-bench: performance regressed past threshold against", *baseline)
					return 1
				}
			}
		}
	}
	r.Timing.SetWall(time.Since(start))
	rec := &report.BenchReport{
		Exp:         *exp,
		Scale:       *scale,
		Jobs:        *jobs,
		Fidelity:    string(fid.OrExact()),
		Workloads:   names,
		WallNanos:   int64(r.Timing.Wall()),
		BusyNanos:   int64(r.Timing.BusyTime()),
		Sims:        r.Timing.Sims(),
		Profiles:    r.Timing.Profiles(),
		CacheHits:   r.Timing.Hits(),
		Experiments: expTimes,
		Partial:     partial,
	}
	if fab != nil {
		fs := fab.Stats()
		rec.Fabric = &fs
	}
	if *benchOut != "" {
		if err := report.WriteBenchFile(*benchOut, rec); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "watchdog-bench: wrote timing record %s (%s wall)\n",
			*benchOut, r.Timing.Wall().Round(time.Millisecond))
	}
	if *trend != "" {
		if partial {
			fmt.Fprintln(stderr, "watchdog-bench: skipping -trend append: this run is partial")
		} else {
			pt := report.BenchPoint(*trendLabel, rec)
			pt.UnixNanos = time.Now().UnixNano()
			tr, err := report.AppendTrajectory(*trend, pt)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "watchdog-bench: appended %s to %s (%d points)\n", pt.Key, *trend, len(tr.Points))
			if *trendGate > 0 {
				// Gate only on the key this run appended: older pairs in a
				// shared trend file are someone else's history.
				regressed := false
				for _, reg := range tr.Regressed(*trendGate) {
					if reg.Key != pt.Key {
						continue
					}
					regressed = true
					fmt.Fprintf(stderr, "watchdog-bench: trend regression: %s %s %.4g -> %.4g (%+.1f%%)\n",
						reg.Key, reg.Metric, reg.Prev, reg.Curr, reg.DeltaPct)
				}
				if regressed {
					return 1
				}
			}
		}
	}
	if *memProf != "" {
		if err := writeMemProfile(*memProf); err != nil {
			return fail(err)
		}
	}
	if *timing {
		fmt.Fprintf(stderr, "watchdog-bench: %s (-j %d)\n", r.Timing.String(), *jobs)
		if fab != nil {
			fs := fab.Stats()
			fmt.Fprintf(stderr, "watchdog-bench: fabric: %d cells sent, %d hedged, %d retried, %d cache hits, %d ejections\n",
				fs.CellsSent, fs.Hedged, fs.Retried, fs.CacheHits, fs.Ejections)
			for _, w := range fs.Workers {
				state := "alive"
				if !w.Alive {
					state = "dead"
				}
				fmt.Fprintf(stderr, "watchdog-bench: fabric worker %s: %s, %d requests, %d errors, p50 %.1fms, p99 %.1fms\n",
					w.Addr, state, w.Requests, w.Errors, w.P50Milli, w.P99Milli)
			}
		}
	}
	if partial {
		return 1
	}
	return 0
}

// writeMemProfile dumps the allocation profile after a final GC so the
// heap numbers reflect live data, not garbage.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

func knownExp(name string) bool {
	for _, k := range knownExps {
		if k == name {
			return true
		}
	}
	return false
}

func remotableExp(name string) bool {
	for _, k := range remotableExps {
		if k == name {
			return true
		}
	}
	return false
}

// workerList parses the -workers flag: a comma-separated address
// list, each normalized eagerly (so a malformed address fails the run
// before any sweep starts, not mid-sweep).
func workerList(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var addrs []string
	for _, a := range strings.Split(list, ",") {
		if strings.TrimSpace(a) == "" {
			continue
		}
		n, err := fabric.NormalizeAddr(a)
		if err != nil {
			return nil, fmt.Errorf("-workers: %w", err)
		}
		addrs = append(addrs, n)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-workers %q selects no workers", list)
	}
	return addrs, nil
}

// workloadSubset parses the -workloads flag and validates every name
// eagerly, reporting the full list of unknown names (instead of
// silently running an empty or partial subset).
func workloadSubset(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var names, unknown []string
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, ok := workload.ByName(n); !ok {
			unknown = append(unknown, fmt.Sprintf("%q", n))
			continue
		}
		names = append(names, n)
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown workloads: %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(workload.Names(), ", "))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-workloads %q selects no workloads (known: %s)",
			list, strings.Join(workload.Names(), ", "))
	}
	return names, nil
}
