// watchdog-sim runs a single workload on the simulated processor under
// a chosen checking configuration and reports timing and engine
// statistics.
//
// Usage:
//
//	watchdog-sim -list
//	watchdog-sim -workload mcf -config isa -scale 2
//	watchdog-sim -workload perl -config conservative -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"watchdog/internal/asm"
	"watchdog/internal/core"
	"watchdog/internal/experiments"
	"watchdog/internal/isa"
	"watchdog/internal/rt"
	"watchdog/internal/sim"
	"watchdog/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "mcf", "workload name (see -list)")
		cfg     = flag.String("config", "isa", "configuration: baseline|conservative|isa|isa-nolock|isa-ideal|bounds-1uop|bounds-2uop|location|software|no-copy-elim|monolithic")
		scale   = flag.Int("scale", 1, "problem-size multiplier")
		list    = flag.Bool("list", false, "list workloads and exit")
		verbose = flag.Bool("v", false, "print per-class µop counts and program output")
		disasm  = flag.Bool("disasm", false, "print the assembled program listing and exit")
		trace   = flag.Int("trace", 0, "trace the first N executed instructions to stderr")
		asmFile = flag.String("asm", "", "run a WD64 assembly file (expects a \"main\" function) instead of a workload")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this path")
		memProf = flag.String("memprofile", "", "write an allocation profile (go tool pprof) to this path when done")
	)
	flag.Parse()

	// Reject a bogus scale up front: workload.BuildProgram clamps
	// non-positive scales to 1, so without this check `-scale 0` would
	// run fine while the banner below reports the scale that was asked
	// for, not the one simulated.
	if *scale < 1 {
		fmt.Fprintf(os.Stderr, "watchdog-sim: -scale %d: the problem-size multiplier must be >= 1\n", *scale)
		os.Exit(1)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *asmFile != "" {
		if err := runAsmFile(*asmFile, *cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-9s %s\n", w.Name, w.Kernel)
		}
		return
	}
	if *disasm || *trace > 0 {
		if err := inspect(*name, *scale, *disasm, *trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *disasm {
			return
		}
	}

	w, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *name)
		os.Exit(1)
	}
	r, err := experiments.NewRunner(*scale, w.Name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := r.Run(w, experiments.ConfigName(*cfg))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload   %s (%s)\n", w.Name, w.Kernel)
	fmt.Printf("config     %s, scale %d\n", *cfg, *scale)
	fmt.Printf("insts      %d macro, %d µops\n", res.Insts, res.Timing.Uops)
	fmt.Printf("cycles     %d (IPC %.2f)\n", res.Timing.Cycles, res.Timing.IPC())
	if base, err := r.Run(w, experiments.CfgBaseline); err == nil && *cfg != "baseline" {
		ratio := float64(res.Timing.Cycles) / float64(base.Timing.Cycles)
		fmt.Printf("overhead   %.1f%% over baseline (%d cycles)\n", (ratio-1)*100, base.Timing.Cycles)
	}
	fmt.Printf("mem ops    %d checked, %d classified as pointer ops (%.1f%%)\n",
		res.Engine.MemAccesses, res.Engine.PtrOps,
		100*float64(res.Engine.PtrOps)/float64(max(res.Engine.MemAccesses, 1)))
	fmt.Printf("checks     %d injected\n", res.Engine.Checks)
	if *verbose {
		fmt.Printf("µop classes:\n")
		for m := isa.MetaClass(0); m < isa.NumMetaClasses; m++ {
			fmt.Printf("  %-9s %d\n", m, res.Timing.UopsByMeta[m])
		}
		fmt.Printf("mispredicts %d\n", res.Timing.Mispredicts)
		fmt.Printf("output      %v\n", res.Output)
	}
}

// runAsmFile assembles and runs a WD64 text program on top of the
// simulated runtime.
func runAsmFile(path, cfgName string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	opts := rt.Options{Policy: core.PolicyWatchdog}
	cc := core.DefaultConfig()
	switch cfgName {
	case "baseline":
		opts.Policy = core.PolicyBaseline
		cc = core.Config{Policy: core.PolicyBaseline}
	case "conservative":
		cc.PtrPolicy = core.PtrConservative
	case "bounds-1uop":
		opts.Bounds = true
		cc.Bounds = core.BoundsFused
	}
	build := rt.NewBuild(opts)
	if err := asm.Parse(build.B, string(src)); err != nil {
		return err
	}
	prog, err := build.Finish()
	if err != nil {
		return err
	}
	simCfg := sim.Default()
	simCfg.Core = cc
	simCfg.RuntimeEnd = build.RuntimeEnd()
	res, err := sim.Run(prog, simCfg)
	if err != nil {
		return err
	}
	fmt.Printf("insts   %d macro, %d µops, %d cycles (IPC %.2f)\n",
		res.Insts, res.Timing.Uops, res.Timing.Cycles, res.Timing.IPC())
	fmt.Printf("output  %v %q\n", res.Output, res.Text)
	switch {
	case res.MemErr != nil:
		fmt.Printf("caught  %v\n", res.MemErr)
	case res.Aborted:
		fmt.Printf("abort   runtime code %d\n", res.AbortCode)
	}
	return nil
}

// inspect prints a disassembly and/or traces execution of the
// workload under the default Watchdog configuration (functional run).
func inspect(name string, scale int, disasm bool, trace int) error {
	w, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	prog, rtEnd, err := workload.BuildProgram(w, rt.Options{Policy: core.PolicyWatchdog}, scale)
	if err != nil {
		return err
	}
	if disasm {
		fmt.Print(prog.Disasm(0, 0))
		return nil
	}
	n := 0
	cfg := sim.Config{Core: core.DefaultConfig(), RuntimeEnd: rtEnd}
	cfg.Trace = func(pc int, in *isa.Inst) {
		if n >= trace {
			return
		}
		n++
		for _, l := range prog.LabelsAt(pc) {
			fmt.Fprintf(os.Stderr, "%s:\n", l)
		}
		fmt.Fprintf(os.Stderr, "%6d  %s\n", pc, in.String())
	}
	res, err := sim.Run(prog, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "-- traced %d of %d instructions --\n", n, res.Insts)
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
