// watchdog-sim runs a single workload on the simulated processor under
// a chosen checking configuration and reports timing and engine
// statistics.
//
// Usage:
//
//	watchdog-sim -list
//	watchdog-sim -workload mcf -config isa -scale 2
//	watchdog-sim -workload perl -config conservative -v
//	watchdog-sim -workload mcf -config isa -timeline out.json   # open in ui.perfetto.dev
//	watchdog-sim -asm prog.wd -flight-log 64                    # dump last events on a violation
//
// SIGINT/SIGTERM cancel the simulation cooperatively mid-run: the
// exit code is non-zero and a -cpuprofile is still stopped and
// flushed instead of being left unusable.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"watchdog/internal/asm"
	"watchdog/internal/core"
	"watchdog/internal/experiments"
	"watchdog/internal/isa"
	"watchdog/internal/rt"
	"watchdog/internal/sim"
	"watchdog/internal/trace"
	"watchdog/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable entry point: parses args, executes under ctx
// (canceled on SIGINT/SIGTERM by main), and returns the process exit
// code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("watchdog-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "mcf", "workload name (see -list)")
		cfg      = fs.String("config", "isa", "configuration: "+strings.Join(experiments.ConfigNames(), "|"))
		scale    = fs.Int("scale", 1, "problem-size multiplier")
		list     = fs.Bool("list", false, "list workloads and exit")
		verbose  = fs.Bool("v", false, "print per-class µop counts and program output")
		disasm   = fs.Bool("disasm", false, "print the assembled program listing (combines with -trace)")
		traceN   = fs.Int("trace", 0, "trace the first N executed instructions to stderr")
		timeline = fs.String("timeline", "", "write the run's Perfetto/Chrome trace-event timeline (load in ui.perfetto.dev) to this JSON path")
		flightN  = fs.Int("flight-log", 0, "keep the last N trace events in a flight recorder and dump them on a violation or runtime abort")
		asmFile  = fs.String("asm", "", "run a WD64 assembly file (expects a \"main\" function) instead of a workload")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this path")
		memProf  = fs.String("memprofile", "", "write an allocation profile (go tool pprof) to this path when done")
		fidelity = fs.String("fidelity", "exact", "timing fidelity: exact|sampled|memoized")
		sampFF   = fs.Uint64("sample-ff", 0, "sampled fidelity: fast-forward instructions per period (0 = paper default)")
		sampWU   = fs.Uint64("sample-warmup", 0, "sampled fidelity: warmup instructions per period (0 = paper default)")
		sampWin  = fs.Uint64("sample", 0, "sampled fidelity: measured instructions per period (0 = paper default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "watchdog-sim:", err)
		return 1
	}

	// Reject a bogus scale up front: workload.BuildProgram clamps
	// non-positive scales to 1, so without this check `-scale 0` would
	// run fine while the banner below reports the scale that was asked
	// for, not the one simulated.
	if *scale < 1 {
		return fail(fmt.Errorf("-scale %d: the problem-size multiplier must be >= 1", *scale))
	}
	if *flightN < 0 {
		return fail(fmt.Errorf("-flight-log %d: the event count must be >= 0", *flightN))
	}
	fid, err := sim.ParseFidelity(*fidelity)
	if err != nil {
		return fail(err)
	}
	sampling, err := sim.SamplingOverride(fid, *sampFF, *sampWU, *sampWin)
	if err != nil {
		return fail(err)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	if *asmFile != "" {
		if err := runAsmFile(ctx, *asmFile, *cfg, *traceN, *timeline, *flightN, stdout, stderr); err != nil {
			return fail(err)
		}
		return 0
	}

	if *list {
		for _, w := range workload.All() {
			fmt.Fprintf(stdout, "%-9s %s\n", w.Name, w.Kernel)
		}
		return 0
	}
	if *disasm || *traceN > 0 {
		// -disasm and -trace combine: the listing prints first, then
		// the traced functional run.
		if err := inspect(ctx, *name, *scale, *disasm, *traceN, stdout, stderr); err != nil {
			return fail(err)
		}
		if *disasm && *traceN == 0 {
			return 0
		}
	}

	w, ok := workload.ByName(*name)
	if !ok {
		return fail(fmt.Errorf("unknown workload %q (try -list)", *name))
	}
	r, err := experiments.NewRunner(*scale, w.Name)
	if err != nil {
		return fail(err)
	}
	// The signal context rides the runner: a SIGINT mid-simulation
	// cancels cooperatively inside machine.Run, the error path below
	// returns non-zero, and the profile defers still flush.
	r.Ctx = ctx
	r.Fidelity = fid
	r.Sampling = sampling
	if *timeline != "" || *flightN > 0 {
		r.Trace = &trace.Config{Timeline: *timeline != "", FlightN: *flightN}
	}
	res, err := r.Run(w, experiments.ConfigName(*cfg))
	// The baseline comparison run below needs no trace attached.
	r.Trace = nil
	if err != nil {
		return fail(err)
	}
	if *timeline != "" {
		labels := map[string]string{
			"workload": w.Name,
			"config":   *cfg,
			"scale":    fmt.Sprint(*scale),
		}
		if err := trace.WritePerfettoFile(*timeline, res.Trace, labels); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "watchdog-sim: wrote timeline %s (%d events)\n",
			*timeline, len(res.Trace.Events()))
	}

	fmt.Fprintf(stdout, "workload   %s (%s)\n", w.Name, w.Kernel)
	fmt.Fprintf(stdout, "config     %s, scale %d, fidelity %s\n", *cfg, *scale, fid.OrExact())
	fmt.Fprintf(stdout, "insts      %d macro, %d µops\n", res.Insts, res.Timing.Uops)
	fmt.Fprintf(stdout, "cycles     %d (IPC %.2f)\n", res.Timing.Cycles, res.Timing.IPC())
	if res.SampledInsts > 0 && res.SampledInsts < res.Insts {
		// A sampled run's raw cycle counter covers only the measured
		// windows; the extrapolation is the whole-program estimate.
		fmt.Fprintf(stdout, "sampled    %d of %d insts (%.1f%%), estimated %d cycles\n",
			res.SampledInsts, res.Insts,
			100*float64(res.SampledInsts)/float64(res.Insts), res.EstimatedCycles())
	}
	if base, err := r.Run(w, experiments.CfgBaseline); err == nil && *cfg != "baseline" {
		ratio := float64(res.EstimatedCycles()) / float64(base.EstimatedCycles())
		fmt.Fprintf(stdout, "overhead   %.1f%% over baseline (%d cycles)\n", (ratio-1)*100, base.EstimatedCycles())
	}
	fmt.Fprintf(stdout, "mem ops    %d checked, %d classified as pointer ops (%.1f%%)\n",
		res.Engine.MemAccesses, res.Engine.PtrOps,
		100*float64(res.Engine.PtrOps)/float64(max(res.Engine.MemAccesses, 1)))
	fmt.Fprintf(stdout, "checks     %d injected\n", res.Engine.Checks)
	if *verbose {
		fmt.Fprintf(stdout, "µop classes:\n")
		for m := isa.MetaClass(0); m < isa.NumMetaClasses; m++ {
			fmt.Fprintf(stdout, "  %-9s %d\n", m, res.Timing.UopsByMeta[m])
		}
		fmt.Fprintf(stdout, "mispredicts %d\n", res.Timing.Mispredicts)
		fmt.Fprintf(stdout, "output      %v\n", res.Output)
	}
	return 0
}

// runAsmFile assembles and runs a WD64 text program on top of the
// simulated runtime.
func runAsmFile(ctx context.Context, path, cfgName string, traceN int, timeline string, flightN int, stdout, stderr io.Writer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	opts := rt.Options{Policy: core.PolicyWatchdog}
	cc := core.DefaultConfig()
	switch cfgName {
	case "baseline":
		opts.Policy = core.PolicyBaseline
		cc = core.Config{Policy: core.PolicyBaseline}
	case "conservative":
		cc.PtrPolicy = core.PtrConservative
	case "bounds-1uop":
		opts.Bounds = true
		cc.Bounds = core.BoundsFused
	case "location":
		opts.Policy = core.PolicyLocation
		cc = core.Config{Policy: core.PolicyLocation}
	case "software":
		opts.Policy = core.PolicySoftware
		cc = core.Config{Policy: core.PolicySoftware, PtrPolicy: core.PtrConservative}
	case "xtag":
		opts.Policy = core.PolicyXTag
		cc = core.Config{Policy: core.PolicyXTag, PtrPolicy: core.PtrConservative,
			TagBits: core.DefaultTagBits}
	case "dangkiller":
		opts.Policy = core.PolicyDangKiller
		cc = core.Config{Policy: core.PolicyDangKiller, PtrPolicy: core.PtrConservative}
	}
	build := rt.NewBuild(opts)
	if err := asm.Parse(build.B, string(src)); err != nil {
		return err
	}
	prog, err := build.Finish()
	if err != nil {
		return err
	}
	simCfg := sim.Default()
	simCfg.Core = cc
	simCfg.RuntimeEnd = build.RuntimeEnd()
	if traceN > 0 {
		simCfg.TraceBudget = uint64(traceN)
		simCfg.Trace = traceFn(prog, stderr)
	}
	if timeline != "" || flightN > 0 {
		simCfg.Sink = trace.New(trace.Config{Timeline: timeline != "", FlightN: flightN})
	}
	res, err := sim.RunCtx(ctx, prog, simCfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "insts   %d macro, %d µops, %d cycles (IPC %.2f)\n",
		res.Insts, res.Timing.Uops, res.Timing.Cycles, res.Timing.IPC())
	fmt.Fprintf(stdout, "output  %v %q\n", res.Output, res.Text)
	switch {
	case res.MemErr != nil:
		fmt.Fprintf(stdout, "caught  %v\n", res.MemErr)
	case res.Aborted:
		fmt.Fprintf(stdout, "abort   runtime code %d\n", res.AbortCode)
	}
	if flightN > 0 && (res.MemErr != nil || res.Aborted) {
		if err := res.Trace.DumpFlight(stderr, resolver(prog)); err != nil {
			return err
		}
	}
	if timeline != "" {
		if err := trace.WritePerfettoFile(timeline, res.Trace, map[string]string{"asm": path, "config": cfgName}); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "watchdog-sim: wrote timeline %s (%d events)\n",
			timeline, len(res.Trace.Events()))
	}
	return nil
}

// inspect prints a disassembly and/or traces execution of the
// workload under the default Watchdog configuration (functional run).
func inspect(ctx context.Context, name string, scale int, disasm bool, traceN int, stdout, stderr io.Writer) error {
	w, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	prog, rtEnd, err := workload.BuildProgram(w, rt.Options{Policy: core.PolicyWatchdog}, scale)
	if err != nil {
		return err
	}
	if disasm {
		fmt.Fprint(stdout, prog.Disasm(0, 0))
	}
	if traceN <= 0 {
		return nil
	}
	cfg := sim.Config{Core: core.DefaultConfig(), RuntimeEnd: rtEnd}
	// The budget lives in the sink, so once the first traceN
	// instructions have printed the observer is detached instead of
	// being re-entered (and skipped) for every remaining instruction.
	cfg.TraceBudget = uint64(traceN)
	cfg.Trace = traceFn(prog, stderr)
	res, err := sim.RunCtx(ctx, prog, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "-- traced %d of %d executed instructions --\n",
		res.Trace.InstObserved(), res.Insts)
	return nil
}

// traceFn renders one macro instruction per line, with labels.
func traceFn(prog *asm.Program, w io.Writer) func(pc int, in *isa.Inst) {
	return func(pc int, in *isa.Inst) {
		for _, l := range prog.LabelsAt(pc) {
			fmt.Fprintf(w, "%s:\n", l)
		}
		fmt.Fprintf(w, "%6d  %s\n", pc, in.String())
	}
}

// resolver renders the macro instruction at a pc for flight-log lines.
func resolver(prog *asm.Program) func(pc int) string {
	return func(pc int) string {
		if pc < 0 || pc >= len(prog.Insts) {
			return fmt.Sprintf("pc?%d", pc)
		}
		return prog.Insts[pc].String()
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
