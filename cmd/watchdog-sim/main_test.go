package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// tracedLine matches one observer line of the instruction trace:
// a right-aligned pc followed by the rendered instruction.
var tracedLine = regexp.MustCompile(`(?m)^\s+\d+  \S`)

// TestDisasmTraceCombine: -disasm and -trace used together must honor
// both — the listing on stdout AND the traced run on stderr. (The old
// CLI silently dropped -trace whenever -disasm was set.)
func TestDisasmTraceCombine(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-workload", "mcf", "-disasm", "-trace", "5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "_start:") {
		t.Errorf("-disasm listing missing from stdout:\n%s", firstLines(stdout.String(), 5))
	}
	if got := len(tracedLine.FindAllString(stderr.String(), -1)); got != 5 {
		t.Errorf("stderr has %d traced instruction lines, want 5:\n%s", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-- traced 5 of ") {
		t.Errorf("trace footer must report 5 observed instructions:\n%s", stderr.String())
	}
}

// TestTraceFooterCountsObserved: the footer reports how many
// instructions the observer actually printed (the budget), not the
// total executed — `-trace 3` on a 70k-instruction run says "traced 3".
func TestTraceFooterCountsObserved(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-workload", "mcf", "-trace", "3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	m := regexp.MustCompile(`-- traced (\d+) of (\d+) executed instructions --`).FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("footer missing from stderr:\n%s", stderr.String())
	}
	if m[1] != "3" {
		t.Errorf("footer says traced %s, want 3", m[1])
	}
	if m[2] == "3" || m[2] == "0" {
		t.Errorf("footer total %s looks like the budget, not the executed count", m[2])
	}
	// The timed report still prints after the traced inspection.
	if !strings.Contains(stdout.String(), "cycles") {
		t.Errorf("-trace without -disasm must still run the timed report:\n%s", stdout.String())
	}
}

// TestTimelineWritesPerfettoJSON: -timeline produces a JSON document
// with a non-empty traceEvents array (the Chrome/Perfetto trace-event
// format) and leaves the normal report intact.
func TestTimelineWritesPerfettoJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.json")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-workload", "mcf", "-config", "isa", "-timeline", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline has no trace events")
	}
	if !strings.Contains(stderr.String(), "wrote timeline") {
		t.Errorf("stderr should note the written timeline:\n%s", stderr.String())
	}
	for _, want := range []string{"workload", "cycles", "overhead"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("timed report missing %q with -timeline set:\n%s", want, stdout.String())
		}
	}
}

// uafProgram is a minimal WD64 use-after-free: read a heap box after
// freeing it. The Watchdog identifier check flags the dangling load.
const uafProgram = `
main:
    movi r1, 32
    call malloc
    mov  r4, r1
    st   [r4], r4
    call free
    ld   r2, [r4]
    sys  putint, r2
    ret
`

// TestFlightLogDumpsOnViolation: an -asm run with -flight-log must,
// on a violation, dump the recorded tail to stderr — naming the
// faulting identifier (key/lock), the check outcome, and the resolved
// macro instruction.
func TestFlightLogDumpsOnViolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "uaf.wdasm")
	if err := os.WriteFile(path, []byte(uafProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-asm", path, "-flight-log", "32"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "caught  use-after-free") {
		t.Fatalf("run did not catch the UAF:\n%s", stdout.String())
	}
	dump := stderr.String()
	for _, want := range []string{
		"flight recorder: last",
		"VIOLATION",
		"use-after-free",
		"key=",
		"lock=0x",
		"ld r2, [r4]", // the resolver renders the faulting macro instruction
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("flight dump missing %q:\n%s", want, dump)
		}
	}
}

// TestFlightLogQuietOnCleanRun: a clean -asm run with -flight-log
// attached must not dump anything.
func TestFlightLogQuietOnCleanRun(t *testing.T) {
	clean := strings.Replace(uafProgram, "call free\n    ld   r2, [r4]",
		"ld   r2, [r4]\n    call free", 1)
	path := filepath.Join(t.TempDir(), "clean.wdasm")
	if err := os.WriteFile(path, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-asm", path, "-flight-log", "32"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "flight recorder") {
		t.Errorf("clean run dumped the flight recorder:\n%s", stderr.String())
	}
}

// TestBadFlagValuesRejected: invalid numeric flags fail fast.
func TestBadFlagValuesRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "0"},
		{"-flight-log", "-1"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code == 0 {
			t.Errorf("run(%v) = 0, want non-zero", args)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestInterruptExitsNonZero: a dead signal context cancels the
// simulation mid-flight and the CLI reports it instead of printing a
// bogus result.
func TestInterruptExitsNonZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	if code := run(ctx, []string{"-workload", "mcf"}, &stdout, &stderr); code == 0 {
		t.Fatalf("interrupted run exited 0; stdout: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "canceled") {
		t.Errorf("stderr does not surface the cancellation: %s", stderr.String())
	}
}
