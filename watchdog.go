// Package watchdog is a full-system reproduction of "Watchdog:
// Hardware for Safe and Secure Manual Memory Management and Full
// Memory Safety" (Nagarakatte, Martin, Zdancewic — ISCA 2012).
//
// The package exposes the complete stack built for the reproduction:
//
//   - a WD64 macro/µop ISA and assembler (an x86-64 stand-in),
//   - a Sandy-Bridge-class out-of-order timing model with the Table 2
//     memory hierarchy, PPM branch predictor and lock location cache,
//   - the Watchdog engine itself: lock-and-key allocation identifiers,
//     disjoint shadow-space pointer metadata, µop injection,
//     conservative and ISA-assisted pointer identification, decoupled
//     register metadata with rename copy elimination, and the bounds
//     extension for full memory safety,
//   - a simulated C runtime whose allocator performs the identifier
//     protocol of Figure 3,
//   - twenty SPEC-stand-in workloads, the Juliet-style CWE-416/562
//     security suite, and a harness regenerating every table and
//     figure of the paper's evaluation.
//
// Quick start:
//
//	rt := watchdog.NewRuntime(watchdog.RuntimeOptions{Policy: watchdog.PolicyWatchdog})
//	rt.B.Label("main")
//	// ... emit WD64 code using the builder ...
//	prog, _ := rt.Finish()
//	res, _ := watchdog.Run(prog, watchdog.SimConfig{
//		Core:       watchdog.DefaultCoreConfig(),
//		RuntimeEnd: rt.RuntimeEnd(),
//	})
//	if res.MemErr != nil { /* a use-after-free was caught */ }
package watchdog

import (
	"watchdog/internal/asm"
	"watchdog/internal/core"
	"watchdog/internal/experiments"
	"watchdog/internal/isa"
	"watchdog/internal/machine"
	"watchdog/internal/mem"
	"watchdog/internal/rt"
	"watchdog/internal/security"
	"watchdog/internal/sim"
	"watchdog/internal/stats"
	"watchdog/internal/workload"
)

// Core Watchdog types.
type (
	// CoreConfig selects the checking scheme, pointer-identification
	// policy, bounds mode and microarchitectural options.
	CoreConfig = core.Config
	// Policy is the checking scheme (baseline, watchdog, location,
	// software).
	Policy = core.Policy
	// PtrPolicy selects conservative or ISA-assisted pointer
	// identification.
	PtrPolicy = core.PtrPolicy
	// BoundsMode selects the bounds-checking extension.
	BoundsMode = core.BoundsMode
	// MemoryError is the exception a failed check raises.
	MemoryError = core.MemoryError
	// ErrorKind classifies violations.
	ErrorKind = core.ErrorKind
	// Ident is a lock-and-key allocation identifier.
	Ident = core.Ident
	// Profile is the static pointer-operation set recorded by the
	// profiling pass (ISA-assisted identification).
	Profile = core.Profile
)

// Program construction.
type (
	// Builder assembles WD64 programs.
	Builder = asm.Builder
	// Program is an assembled program ready to run.
	Program = asm.Program
	// MemRef is a memory operand.
	MemRef = isa.MemRef
	// Reg names an architectural register.
	Reg = isa.Reg
	// RuntimeOptions selects the simulated C runtime variant.
	RuntimeOptions = rt.Options
	// RuntimeBuild is a program under construction on top of the
	// runtime (use .B for the builder, "main" as the entry label).
	RuntimeBuild = rt.Build
)

// Simulation.
type (
	// SimConfig configures a run (engine, pipeline, hierarchy).
	SimConfig = sim.Config
	// Result is the outcome of a run: checksum output, violations,
	// timing statistics, memory footprint.
	Result = machine.Result
	// BenchRunner executes (workload, configuration) sweeps and
	// regenerates the paper's figures.
	BenchRunner = experiments.Runner
	// ConfigName names a predefined evaluation configuration.
	ConfigName = experiments.ConfigName
	// SecuritySummary aggregates a security-suite run.
	SecuritySummary = security.Summary
	// Table is a rendered result table.
	Table = stats.Table
)

// Policies.
const (
	PolicyBaseline = core.PolicyBaseline
	PolicyWatchdog = core.PolicyWatchdog
	PolicyLocation = core.PolicyLocation
	PolicySoftware = core.PolicySoftware

	PtrConservative = core.PtrConservative
	PtrISAAssisted  = core.PtrISAAssisted

	BoundsOff      = core.BoundsOff
	BoundsFused    = core.BoundsFused
	BoundsSeparate = core.BoundsSeparate

	ErrUseAfterFree = core.ErrUseAfterFree
	ErrOutOfBounds  = core.ErrOutOfBounds
	ErrNoMetadata   = core.ErrNoMetadata
	ErrUnallocated  = core.ErrUnallocated
)

// Evaluation configuration names (see cmd/watchdog-bench).
const (
	CfgBaseline     = experiments.CfgBaseline
	CfgConservative = experiments.CfgConservative
	CfgISA          = experiments.CfgISA
	CfgISANoLock    = experiments.CfgISANoLock
	CfgBounds1      = experiments.CfgBounds1
	CfgBounds2      = experiments.CfgBounds2
	CfgLocation     = experiments.CfgLocation
	CfgSoftware     = experiments.CfgSoftware
)

// NewBuilder returns an empty WD64 program builder (no runtime).
func NewBuilder() *Builder { return asm.NewBuilder() }

// NewRuntime returns a program builder with the simulated C runtime
// (malloc/free/calloc_words/rand and program startup) already emitted;
// append a "main" function and call Finish.
func NewRuntime(opts RuntimeOptions) *RuntimeBuild { return rt.NewBuild(opts) }

// ParseAsm assembles WD64 text (see internal/asm.Parse for the
// syntax) into the builder.
func ParseAsm(b *Builder, src string) error { return asm.Parse(b, src) }

// Mem builds a base+displacement memory operand of the given width.
func Mem(base Reg, disp int64, width uint8) MemRef { return asm.Mem(base, disp, width) }

// MemIdx builds a base+index*scale+displacement memory operand.
func MemIdx(base, index Reg, scale uint8, disp int64, width uint8) MemRef {
	return asm.MemIdx(base, index, scale, disp, width)
}

// DefaultCoreConfig returns the paper's primary configuration:
// Watchdog with ISA-assisted identification, lock location cache and
// rename copy elimination.
func DefaultCoreConfig() CoreConfig { return core.DefaultConfig() }

// DefaultSimConfig returns the Table 2 machine with timing enabled and
// the default core configuration.
func DefaultSimConfig() SimConfig { return sim.Default() }

// Run executes a program.
func Run(prog *Program, cfg SimConfig) (*Result, error) { return sim.Run(prog, cfg) }

// MTMachine interleaves several hardware contexts over shared memory
// (Section 7's multithreading model: partitioned identifier spaces,
// atomic macro instructions). Build the program with
// RuntimeOptions{MT: true}, emit per-context entries with
// RuntimeBuild.EmitMTStart, and define thread0..thread<n-1>.
type MTMachine = machine.MT

// NewMTMachine builds an n-context machine for the program.
func NewMTMachine(prog *Program, coreCfg CoreConfig, n int) (*MTMachine, error) {
	return machine.NewMT(prog, mem.New(), coreCfg, n)
}

// FirstViolation scans multi-context results for the first
// memory-safety exception.
func FirstViolation(results []*Result) (int, *MemoryError) {
	return machine.FirstViolation(results)
}

// ProfileProgram performs the Section 5.2 profiling pass and returns
// the static pointer-operation profile for ISA-assisted runs.
func ProfileProgram(prog *Program, base CoreConfig, runtimeEnd int) (*Profile, error) {
	return sim.Profile(prog, base, runtimeEnd)
}

// Workloads lists the twenty SPEC-stand-in benchmark names in the
// paper's figure order.
func Workloads() []string { return workload.Names() }

// NewBenchRunner builds a figure-regeneration runner over all
// workloads (or the given subset).
func NewBenchRunner(scale int, names ...string) (*BenchRunner, error) {
	return experiments.NewRunner(scale, names...)
}

// RunSecuritySuite runs the Juliet-style CWE-416/562 suite (291 bad
// cases plus good twins) under the paper's primary configuration.
func RunSecuritySuite() SecuritySummary { return experiments.Juliet() }

// ProcessorConfig renders the simulated processor configuration
// (Table 2).
func ProcessorConfig() string { return experiments.Table2() }
